"""HTTP transports for :class:`repro.serve.app.ServeApp`.

The transport layer is deliberately thin and now *pluggable*: a
transport owns a listening socket and an accept loop, decodes the wire
request into a :class:`repro.serve.app.Request`, calls ``app.handle``
(which never raises), and writes the :class:`repro.serve.app.Response`
back with an explicit ``Content-Length`` so HTTP/1.1 keep-alive works.
All policy — routing, admission, caching, deadlines, error envelopes —
lives in the app; nothing in this module inspects paths beyond passing
them on.

:class:`ThreadingTransport` is the stdlib ``ThreadingHTTPServer``
flavor.  Beyond the classic "bind host:port yourself" mode it supports
the two socket arrangements the pre-fork supervisor
(:mod:`repro.serve.workers`) needs:

* ``sock=...`` — adopt an already-bound socket (the inherited-FD fork
  model: the supervisor binds and listens once, every forked worker
  accepts from the same queue);
* ``reuse_port=True`` — bind a fresh socket with ``SO_REUSEPORT`` so N
  workers can each own a listening socket on one address and let the
  kernel spread connections across them.

``worker_label`` stamps an ``X-Repro-Worker`` header on every response
so clients, tests, and load-gen tools can tell which process answered
without disturbing the response body (parity stays byte-exact).

:class:`ServeServer` is the original single-process name and remains
the default transport; ``start()`` spawns the accept loop on a
background thread (tests drive this), while ``serve_forever()`` runs
it in the foreground; on ``KeyboardInterrupt`` the socket closes and
in-flight handler threads are joined, then the interrupt propagates so
the CLI can exit 130 without a traceback.
"""

from __future__ import annotations

import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional
from urllib.parse import parse_qsl, urlsplit

from .app import (SERVE_SCHEMA, SERVE_SCHEMA_VERSION, Request, Response,
                  ServeApp)

#: Requests advertising a larger body than this are rejected before
#: the body is read; every legitimate query body is a few KB of API
#: names, so 8 MiB is generous without inviting memory abuse.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Methods whose requests carry a body and therefore must declare its
#: framing.  A POST/PUT without ``Content-Length`` used to sail through
#: with a silently-empty body; now it is rejected with 411 so a query
#: payload can never be lost without a diagnostic.
_BODY_METHODS = frozenset({"POST", "PUT"})


def reuse_port_available() -> bool:
    """True when the platform offers ``SO_REUSEPORT`` load balancing."""
    return hasattr(socket, "SO_REUSEPORT")


def _transport_error(status: int, error_type: str,
                     message: str) -> Response:
    """A wire-level error in the same envelope the app speaks."""
    return Response.json(status, {
        "schema": SERVE_SCHEMA,
        "version": SERVE_SCHEMA_VERSION,
        "error": {"status": status, "class": "bad_request",
                  "type": error_type, "message": message},
    })


class _Handler(BaseHTTPRequestHandler):
    """Wire codec: bytes in, ``app.handle``, bytes out."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    sys_version = ""
    # The stdlib default is an *unbuffered* write file: every
    # send_header() call becomes its own TCP segment, and Nagle +
    # delayed ACK turn a sub-millisecond cached response into ~40ms.
    # Buffer the writes (handle_one_request flushes per request) and
    # disable Nagle so the flush goes out immediately.
    wbufsize = 64 * 1024
    disable_nagle_algorithm = True

    # Set per-server via the factory in ThreadingTransport.
    app: ServeApp
    quiet: bool = True
    worker_label: Optional[str] = None

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def do_PUT(self) -> None:  # noqa: N802
        self._handle("PUT")

    def do_DELETE(self) -> None:  # noqa: N802
        self._handle("DELETE")

    def _read_body(self, method: str) -> Optional[bytes]:
        """Read the framed request body, or respond and return None.

        Framing errors close the connection: once a body has been
        refused unread, the byte stream can no longer be trusted to
        start a fresh request.
        """
        if self.headers.get("Transfer-Encoding") is not None:
            # Chunked (or any other) transfer coding is unsupported;
            # accepting the request would silently drop the payload.
            self._write(_transport_error(
                411, "LengthRequired",
                "chunked transfer coding is not supported; send a "
                "Content-Length framed body"))
            self.close_connection = True
            return None
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            if method in _BODY_METHODS:
                self._write(_transport_error(
                    411, "LengthRequired",
                    f"{method} requires a Content-Length header"))
                self.close_connection = True
                return None
            return b""
        try:
            length = int(length_header)
        except ValueError:
            length = -1
        if length < 0:
            self._write(_transport_error(
                400, "BadContentLength",
                f"invalid Content-Length: {length_header!r}"))
            self.close_connection = True
            return None
        if length > MAX_BODY_BYTES:
            self._write(_transport_error(
                413, "PayloadTooLarge", "request body too large"))
            self.close_connection = True
            return None
        return self.rfile.read(length)

    def _handle(self, method: str) -> None:
        split = urlsplit(self.path)
        body = self._read_body(method)
        if body is None:
            return
        pairs = parse_qsl(split.query, keep_blank_values=True)
        query = {}
        duplicates = []
        for key, value in pairs:
            if key in query and key not in duplicates:
                duplicates.append(key)
            query[key] = value
        if duplicates:
            # dict(parse_qsl(...)) used to keep the last value and
            # drop the rest silently; ambiguous queries now fail loud
            # (the body was already consumed, so keep-alive is safe).
            self._write(_transport_error(
                400, "DuplicateQueryParameter",
                "duplicate query parameter(s): "
                + ", ".join(duplicates)))
            return
        request = Request(method=method, path=split.path, query=query,
                          body=body,
                          headers={key: value for key, value
                                   in self.headers.items()})
        response = self.app.handle(request)
        self._write(response)

    def _write(self, response: Response) -> None:
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        if self.worker_label is not None:
            self.send_header("X-Repro-Worker", self.worker_label)
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(response.body)
        except (BrokenPipeError, ConnectionResetError):
            # Client went away mid-write; nothing to salvage.
            self.close_connection = True

    def log_message(self, format: str, *args) -> None:
        if not self.quiet:
            super().log_message(format, *args)


class _SocketedHTTPServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` over a caller-arranged socket.

    Three arrangements, chosen by the constructor arguments:

    * plain — bind ``address`` ourselves (classic behavior);
    * ``reuse_port`` — same, but set ``SO_REUSEPORT`` before binding
      so sibling processes can bind the identical address;
    * ``sock`` — adopt an existing socket (bound, and listening when
      ``listening=True``) instead of binding at all.
    """

    def __init__(self, address, handler, sock: Optional[socket.socket]
                 = None, listening: bool = False,
                 reuse_port: bool = False) -> None:
        super().__init__(address, handler, bind_and_activate=False)
        if sock is not None:
            self.socket.close()  # discard the unbound placeholder
            self.socket = sock
            self.server_address = sock.getsockname()
            host, port = self.server_address[:2]
            self.server_name = host
            self.server_port = port
            if not listening:
                self.server_activate()
        else:
            if reuse_port:
                if not reuse_port_available():  # pragma: no cover
                    raise OSError("SO_REUSEPORT is not available on "
                                  "this platform")
                self.socket.setsockopt(socket.SOL_SOCKET,
                                       socket.SO_REUSEPORT, 1)
            try:
                self.server_bind()
                self.server_activate()
            except BaseException:
                self.server_close()
                raise


class ThreadingTransport:
    """Listener lifecycle around one :class:`ServeApp`.

    The base (and default) transport: a threaded accept loop over one
    listening socket.  See the module docstring for the ``sock`` /
    ``reuse_port`` / ``worker_label`` extension points the pre-fork
    supervisor uses.
    """

    def __init__(self, app: ServeApp, host: str = "127.0.0.1",
                 port: int = 0, quiet: bool = True,
                 sock: Optional[socket.socket] = None,
                 listening: bool = True,
                 reuse_port: bool = False,
                 worker_label: Optional[str] = None) -> None:
        self.app = app
        handler = type("BoundHandler", (_Handler,),
                       {"app": app, "quiet": quiet,
                        "worker_label": worker_label})
        self._httpd = _SocketedHTTPServer((host, port), handler,
                                          sock=sock,
                                          listening=listening,
                                          reuse_port=reuse_port)
        self._httpd.daemon_threads = False  # join in-flight on stop
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the kernel's pick)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ThreadingTransport":
        """Run the accept loop on a background thread."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-accept", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, then join the accept loop and close.

        ``server_close`` joins the non-daemon handler threads, so
        in-flight requests drain before this returns — the graceful
        half of worker SIGTERM handling.
        """
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._httpd.server_close()

    def serve_forever(self,
                      on_ready: Optional[Callable[["ThreadingTransport"],
                                                  None]] = None) -> None:
        """Foreground accept loop; Ctrl-C closes cleanly, then raises.

        ``on_ready`` (if given) is called just before the loop starts
        — callers use it to print the bound address.
        """
        if on_ready is not None:
            on_ready(self)
        try:
            self._httpd.serve_forever(poll_interval=0.2)
        finally:
            # Runs on Ctrl-C too: the stdlib loop's own finally-block
            # has already marked itself shut down, so closing here is
            # safe and the KeyboardInterrupt propagates to the CLI,
            # which maps it to exit code 130.
            self._httpd.server_close()

    def __enter__(self) -> "ThreadingTransport":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False


class ServeServer(ThreadingTransport):
    """The single-process transport, under its original name."""
