"""The query endpoints: every served answer, as a pure payload function.

Each endpoint is split into two pure pieces so the server can never
drift from the batch path:

* ``normalize_*`` — turn raw HTTP inputs (query string, JSON body)
  into one canonical parameter dict.  Defaults are filled in,
  order-insensitive API lists are sorted and deduplicated, and
  everything is validated here — this dict is both the handler input
  and the result-cache key material.
* ``*_payload`` — compute the response ``data`` object from a
  :class:`repro.dataset.Dataset` and canonical params, delegating to
  the **same** :mod:`repro.metrics` / :mod:`repro.compat` entry points
  the CLI uses.  The parity suite calls these functions directly and
  compares their canonical JSON byte-for-byte against what the HTTP
  server returns.

Request-level errors raise :class:`BadRequestError`; the app maps the
whole :class:`ServeRequestError` hierarchy (and the engine's analysis
taxonomy) onto the JSON error envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Any, Callable, Dict, List, Mapping, Optional,
                    Sequence, Tuple)

from ..compat import (SystemModel, coverage_plan, evaluate_system,
                      workload_suggestions)
from ..dataset.core import Dataset
from ..dataset.dimensions import ALL_DIMENSIONS
from ..libc import symbols as libc_symbols
from ..metrics import (completeness_curve, completeness_trend,
                       dep_semantics_ablation, importance_table,
                       importance_trend, missing_apis_report, ranked,
                       release_diff, unweighted_importance_table,
                       weighted_completeness)
from ..syscalls import fcntl_ops, ioctl, prctl_ops
from ..syscalls.table import ALL_NAMES


# --- request-level error taxonomy --------------------------------------

class ServeRequestError(Exception):
    """Base of the serve-layer request errors (status + error class)."""

    status = 500
    error_class = "internal"


class BadRequestError(ServeRequestError):
    """Malformed or invalid request parameters."""

    status = 400
    error_class = "bad_request"


class NotFoundError(ServeRequestError):
    """No route matches the request path."""

    status = 404
    error_class = "not_found"


class MethodNotAllowedError(ServeRequestError):
    """The path exists but not for this HTTP method."""

    status = 405
    error_class = "method_not_allowed"


# --- parameter helpers --------------------------------------------------

#: The APIs *defined* per dimension (the full x-axis of the paper's
#: figures), as opposed to the APIs some measured package actually
#: uses.  Dimensions without a defined registry serve measured-only.
_DEFINED_UNIVERSES: Dict[str, Callable[[], Sequence[str]]] = {
    "syscall": lambda: sorted(ALL_NAMES),
    "ioctl": lambda: [d.name for d in ioctl.IOCTLS],
    "fcntl": lambda: [d.name for d in fcntl_ops.FCNTLS],
    "prctl": lambda: [d.name for d in prctl_ops.PRCTLS],
    "libc": lambda: [s.name for s in libc_symbols.LIBC_SYMBOLS],
}


def _dimension(params: Mapping[str, str],
               default: str = "syscall") -> str:
    dimension = params.get("dimension", default)
    if dimension not in ALL_DIMENSIONS:
        raise BadRequestError(
            f"unknown dimension {dimension!r}; expected one of "
            f"{', '.join(ALL_DIMENSIONS)}")
    return dimension


def _universe_mode(params: Mapping[str, str], dimension: str) -> str:
    mode = params.get("universe", "measured")
    if mode not in ("measured", "defined"):
        raise BadRequestError(
            f"universe must be 'measured' or 'defined', not {mode!r}")
    if mode == "defined" and dimension not in _DEFINED_UNIVERSES:
        raise BadRequestError(
            f"dimension {dimension!r} has no defined-API registry; "
            f"use universe=measured")
    return mode


def _universe_names(mode: str, dimension: str) -> Sequence[str]:
    if mode == "defined":
        return _DEFINED_UNIVERSES[dimension]()
    return ()


def _int_param(params: Mapping[str, Any], name: str, default: int,
               minimum: int = 0) -> int:
    raw = params.get(name, default)
    try:
        value = int(raw)
    except (TypeError, ValueError):
        raise BadRequestError(
            f"{name} must be an integer, not {raw!r}") from None
    if value < minimum:
        raise BadRequestError(f"{name} must be >= {minimum}")
    return value


def _opt_int_param(params: Mapping[str, Any], name: str,
                   minimum: int = 0) -> Optional[int]:
    """An optional integer query parameter (absent -> None)."""
    if params.get(name) is None:
        return None
    return _int_param(params, name, 0, minimum=minimum)


def _float_param(params: Mapping[str, Any], name: str,
                 default: float, minimum: float = 0.0) -> float:
    raw = params.get(name, default)
    try:
        value = float(raw)
    except (TypeError, ValueError):
        raise BadRequestError(
            f"{name} must be a number, not {raw!r}") from None
    if value < minimum:
        raise BadRequestError(f"{name} must be >= {minimum}")
    return value


def _bool_param(params: Mapping[str, Any], name: str,
                default: bool) -> bool:
    raw = params.get(name, default)
    if isinstance(raw, bool):
        return raw
    if isinstance(raw, str):
        lowered = raw.strip().lower()
        if lowered in ("1", "true", "yes", "on"):
            return True
        if lowered in ("0", "false", "no", "off"):
            return False
    raise BadRequestError(f"{name} must be a boolean, not {raw!r}")


def _api_list(body: Optional[Mapping[str, Any]], field: str,
              required: bool = True) -> List[str]:
    """A sorted, deduplicated API name list from the JSON body.

    Order insensitivity is semantic: every consumer builds a bitmask
    from the list, so ``["read", "write"]`` and ``["write", "read"]``
    are the same query — and must hit the same cache entry.
    """
    if body is None:
        raise BadRequestError("this endpoint requires a JSON body")
    names = body.get(field)
    if names is None:
        if required:
            raise BadRequestError(f"body field {field!r} is required")
        return []
    if (not isinstance(names, list)
            or any(not isinstance(n, str) for n in names)):
        raise BadRequestError(
            f"body field {field!r} must be a list of strings")
    return sorted(set(names))


# --- importance ---------------------------------------------------------

def normalize_importance(params: Mapping[str, str],
                         body: Optional[Mapping[str, Any]],
                         ) -> Dict[str, Any]:
    dimension = _dimension(params)
    return {"dimension": dimension,
            "universe": _universe_mode(params, dimension),
            "limit": _int_param(params, "limit", 0)}


def importance_payload(dataset: Dataset,
                       params: Mapping[str, Any]) -> Dict[str, Any]:
    """Weighted API importance (Appendix A.1) — the fig2/fig4-7 query."""
    dimension = params["dimension"]
    table = importance_table(
        dataset, dimension=dimension,
        universe=_universe_names(params["universe"], dimension))
    pairs = ranked(table)
    limit = params["limit"]
    if limit:
        pairs = pairs[:limit]
    return {
        "dimension": dimension,
        "universe": params["universe"],
        "apis": len(table),
        "nonzero": sum(1 for value in table.values() if value > 0.0),
        "ranked": [[api, value] for api, value in pairs],
        "table": table,
    }


# --- unweighted importance ----------------------------------------------

def normalize_unweighted(params: Mapping[str, str],
                         body: Optional[Mapping[str, Any]],
                         ) -> Dict[str, Any]:
    return normalize_importance(params, body)


def unweighted_payload(dataset: Dataset,
                       params: Mapping[str, Any]) -> Dict[str, Any]:
    """Unweighted importance (§5) — fraction of packages per API."""
    dimension = params["dimension"]
    table = unweighted_importance_table(
        dataset, dimension,
        universe=_universe_names(params["universe"], dimension))
    pairs = ranked(table)
    limit = params["limit"]
    if limit:
        pairs = pairs[:limit]
    return {
        "dimension": dimension,
        "universe": params["universe"],
        "apis": len(table),
        "nonzero": sum(1 for value in table.values() if value > 0.0),
        "ranked": [[api, value] for api, value in pairs],
        "table": table,
    }


# --- weighted completeness ----------------------------------------------

def normalize_completeness(params: Mapping[str, str],
                           body: Optional[Mapping[str, Any]],
                           ) -> Dict[str, Any]:
    merged: Dict[str, Any] = dict(body or {})
    merged.update(params)
    return {"dimension": _dimension(merged),
            "supported": _api_list(body, "supported"),
            "ignore_empty": _bool_param(merged, "ignore_empty", True),
            "suggestions": _int_param(merged, "suggestions", 10)}


def completeness_payload(dataset: Dataset,
                         params: Mapping[str, Any]) -> Dict[str, Any]:
    """Weighted completeness (Appendix A.2) plus next-API suggestions
    — the ``repro-analyze evaluate`` query."""
    dimension = params["dimension"]
    supported = params["supported"]
    ignore_empty = params["ignore_empty"]
    value = weighted_completeness(supported, dataset,
                                  dimension=dimension,
                                  ignore_empty=ignore_empty)
    suggested = missing_apis_report(supported, dataset,
                                    dimension=dimension,
                                    limit=params["suggestions"],
                                    ignore_empty=ignore_empty)
    return {
        "dimension": dimension,
        "supported_count": len(supported),
        "ignore_empty": ignore_empty,
        "weighted_completeness": value,
        "suggested": [[api, weight] for api, weight in suggested],
    }


# --- completeness curve -------------------------------------------------

def normalize_curve(params: Mapping[str, str],
                    body: Optional[Mapping[str, Any]],
                    ) -> Dict[str, Any]:
    return {"dimension": _dimension(params),
            "limit": _int_param(params, "limit", 0)}


def curve_payload(dataset: Dataset,
                  params: Mapping[str, Any]) -> Dict[str, Any]:
    """The Figure 3 implementation path, point by point."""
    dimension = params["dimension"]
    curve = completeness_curve(dataset, dimension=dimension)
    limit = params["limit"]
    points = curve[:limit] if limit else curve
    return {
        "dimension": dimension,
        "total_points": len(curve),
        "points": [[p.n_apis, p.api, p.completeness]
                   for p in points],
    }


# --- advisor plan -------------------------------------------------------

def normalize_plan(params: Mapping[str, str],
                   body: Optional[Mapping[str, Any]],
                   ) -> Dict[str, Any]:
    merged: Dict[str, Any] = dict(body or {})
    merged.update(params)
    return {"dimension": _dimension(merged),
            "modified": _api_list(body, "modified"),
            "limit": _int_param(merged, "limit", 10, minimum=1)}


def plan_payload(dataset: Dataset,
                 params: Mapping[str, Any]) -> Dict[str, Any]:
    """Advisor coverage plan (§6): the smallest workload set covering a
    modified-API set, plus ranked per-package suggestions."""
    dimension = params["dimension"]
    modified = params["modified"]
    plan = coverage_plan(modified, dataset, dimension=dimension)
    suggestions = workload_suggestions(modified, dataset,
                                       dimension=dimension,
                                       limit=params["limit"])
    def encode(entries):
        return [{"package": s.package,
                 "install_probability": s.install_probability,
                 "apis_exercised": list(s.apis_exercised),
                 "coverage": s.coverage} for s in entries]
    covered = set()
    for suggestion in plan:
        covered.update(suggestion.apis_exercised)
    return {
        "dimension": dimension,
        "modified_count": len(modified),
        "covered_count": len(covered),
        "plan": encode(plan),
        "suggestions": encode(suggestions),
    }


# --- system evaluation --------------------------------------------------

def normalize_evaluate(params: Mapping[str, str],
                       body: Optional[Mapping[str, Any]],
                       ) -> Dict[str, Any]:
    merged: Dict[str, Any] = dict(body or {})
    merged.update(params)
    name = merged.get("name", "custom")
    version = merged.get("version", "")
    if not isinstance(name, str) or not isinstance(version, str):
        raise BadRequestError("name and version must be strings")
    return {"name": name, "version": version,
            "supported": _api_list(body, "supported"),
            "suggestions": _int_param(merged, "suggestions", 5)}


def evaluate_payload(dataset: Dataset,
                     params: Mapping[str, Any]) -> Dict[str, Any]:
    """One Table 6 row for an ad-hoc system model."""
    model = SystemModel(name=params["name"],
                        version=params["version"],
                        supported=frozenset(params["supported"]))
    evaluation = evaluate_system(model, dataset,
                                 suggestions=params["suggestions"])
    return {
        "system": evaluation.system,
        "syscall_count": evaluation.syscall_count,
        "weighted_completeness": evaluation.weighted_completeness,
        "suggested_apis": list(evaluation.suggested_apis),
    }


# --- dataset stats ------------------------------------------------------

def normalize_stats(params: Mapping[str, str],
                    body: Optional[Mapping[str, Any]],
                    ) -> Dict[str, Any]:
    return {}


def stats_payload(dataset: Dataset,
                  params: Mapping[str, Any]) -> Dict[str, Any]:
    """The ``dataset stats`` CLI surface, as JSON."""
    stats = dataset.stats()
    # Provenance stamped by the snapshot holder; a bare Dataset (built
    # in-process, never published) reports the in-memory default.
    meta = getattr(dataset, "snapshot_meta",
                   {"format": "memory", "fingerprint": None})
    snapshot: Dict[str, Any] = {"format": meta["format"],
                                "fingerprint": meta["fingerprint"]}
    # A release index is stamped only when the dataset came out of a
    # series holder — plain snapshots keep the two-key shape.
    if "release" in meta:
        snapshot["release"] = meta["release"]
    return {
        "n_packages": stats.n_packages,
        "n_apis": dict(stats.n_apis),
        "n_nonempty": dict(stats.n_nonempty),
        "total_weight": stats.total_weight,
        "has_popcon": stats.has_popcon,
        "has_repository": stats.has_repository,
        "n_dependency_edges": stats.n_dependency_edges,
        "n_virtual_packages": stats.n_virtual_packages,
        "n_provider_edges": stats.n_provider_edges,
        "n_alternative_groups": stats.n_alternative_groups,
        "snapshot": snapshot,
    }


# --- dependency-semantics ablation --------------------------------------

def normalize_dep_semantics(params: Mapping[str, str],
                            body: Optional[Mapping[str, Any]],
                            ) -> Dict[str, Any]:
    return {"dimension": _dimension(params)}


def dep_semantics_payload(dataset: Dataset,
                          params: Mapping[str, Any]) -> Dict[str, Any]:
    """AND-only vs full AND-OR dependency-semantics ablation.

    Runs the completeness curve twice over the served snapshot — full
    semantics vs :meth:`repro.packages.Repository.and_only_view` — and
    reports the signed gaps.  A corpus without alternatives or virtual
    packages reports every gap as exactly ``0.0``.
    """
    if dataset.repository is None:
        raise BadRequestError(
            "the served snapshot has no dependency graph")
    return dep_semantics_ablation(dataset,
                                  dimension=params["dimension"])


# --- series stats -------------------------------------------------------

def normalize_series_stats(params: Mapping[str, str],
                           body: Optional[Mapping[str, Any]],
                           ) -> Dict[str, Any]:
    return {}


def series_stats_payload(series: Any,
                         params: Mapping[str, Any]) -> Dict[str, Any]:
    """Shape and storage economics of the published release train."""
    stats = series.stats()
    return {
        "format": stats["format"],
        "version": stats["version"],
        "series_fingerprint": stats["series_fingerprint"],
        "n_releases": stats["n_releases"],
        "n_packages": list(stats["n_packages"]),
        "release_fingerprints": list(stats["fingerprints"]),
        "file_size": stats["file_size"],
        "base_bytes": stats["base_bytes"],
        "delta_bytes": stats["delta_bytes"],
        "delta_bytes_per_release": {
            str(release): size for release, size
            in sorted(stats["delta_bytes_per_release"].items())},
    }


# --- importance trend ---------------------------------------------------

def normalize_trend_importance(params: Mapping[str, str],
                               body: Optional[Mapping[str, Any]],
                               ) -> Dict[str, Any]:
    raw_apis = params.get("apis")
    apis: Optional[List[str]] = None
    if raw_apis is not None:
        apis = sorted({name.strip() for name in raw_apis.split(",")
                       if name.strip()})
        if not apis:
            raise BadRequestError(
                "apis must name at least one API")
    return {"dimension": _dimension(params),
            "weighted": _bool_param(params, "weighted", True),
            "limit": _int_param(params, "limit", 5, minimum=1),
            "apis": apis,
            "from": _int_param(params, "from", 0),
            "to": _opt_int_param(params, "to")}


def trend_importance_payload(series: Any,
                             params: Mapping[str, Any],
                             ) -> Dict[str, Any]:
    """Per-release importance of an API set across the train."""
    return importance_trend(
        series, apis=params["apis"], dimension=params["dimension"],
        weighted=params["weighted"], limit=params["limit"],
        start=params["from"], stop=params["to"])


# --- completeness trend -------------------------------------------------

def normalize_trend_completeness(params: Mapping[str, str],
                                 body: Optional[Mapping[str, Any]],
                                 ) -> Dict[str, Any]:
    merged: Dict[str, Any] = dict(body or {})
    merged.update(params)
    return {"dimension": _dimension(merged),
            "supported": _api_list(body, "supported"),
            "ignore_empty": _bool_param(merged, "ignore_empty", True),
            "from": _int_param(merged, "from", 0),
            "to": _opt_int_param(merged, "to")}


def trend_completeness_payload(series: Any,
                               params: Mapping[str, Any],
                               ) -> Dict[str, Any]:
    """Weighted completeness of one fixed API set, per release."""
    return completeness_trend(
        series, params["supported"], dimension=params["dimension"],
        ignore_empty=params["ignore_empty"],
        start=params["from"], stop=params["to"])


# --- release diff -------------------------------------------------------

def normalize_release_diff(params: Mapping[str, str],
                           body: Optional[Mapping[str, Any]],
                           ) -> Dict[str, Any]:
    if params.get("from") is None or params.get("to") is None:
        raise BadRequestError(
            "query parameters 'from' and 'to' are required")
    return {"dimension": _dimension(params),
            "weighted": _bool_param(params, "weighted", False),
            "noise_floor": _float_param(params, "noise_floor", 0.02),
            "limit": _int_param(params, "limit", 10, minimum=1),
            "from": _int_param(params, "from", 0),
            "to": _int_param(params, "to", 0)}


def release_diff_payload(series: Any,
                         params: Mapping[str, Any]) -> Dict[str, Any]:
    """What changed between two releases: risers, fallers, migrations."""
    diff = release_diff(series, params["from"], params["to"],
                        dimension=params["dimension"],
                        weighted=params["weighted"],
                        noise_floor=params["noise_floor"])
    limit = params["limit"]

    def encode(deltas):
        return [{"api": d.api, "before": d.before, "after": d.after,
                 "delta": d.delta} for d in deltas]

    return {
        "dimension": params["dimension"],
        "weighted": params["weighted"],
        "noise_floor": params["noise_floor"],
        "from": params["from"],
        "to": params["to"],
        "risers": encode(diff.risers(limit)),
        "fallers": encode(diff.fallers(limit)),
        "migrations": [
            {"legacy": v.legacy, "preferred": v.preferred,
             "legacy_delta": v.legacy_delta,
             "preferred_delta": v.preferred_delta,
             "migrated": v.migrated}
            for v in diff.migration_verdicts()],
        "migrated_pairs": [[v.legacy, v.preferred]
                           for v in diff.migrated_pairs()],
    }


# --- registry -----------------------------------------------------------

@dataclass(frozen=True)
class Endpoint:
    """One query route: method + path + normalize + payload."""

    name: str
    method: str
    path: str
    normalize: Callable[[Mapping[str, str],
                         Optional[Mapping[str, Any]]], Dict[str, Any]]
    #: ``dataset``-scope payloads receive one materialized
    #: :class:`repro.dataset.Dataset` (release-resolved for series
    #: tenants); ``series``-scope payloads receive the whole
    #: :class:`repro.series.DatasetSeries`.
    payload: Callable[[Any, Mapping[str, Any]], Dict[str, Any]]
    summary: str
    cacheable: bool = True
    scope: str = "dataset"


#: Every query endpoint the server routes, in display order.
ENDPOINTS: Tuple[Endpoint, ...] = (
    Endpoint("importance", "GET", "/v1/importance",
             normalize_importance, importance_payload,
             "weighted API importance per dimension (Appendix A.1)"),
    Endpoint("unweighted", "GET", "/v1/unweighted",
             normalize_unweighted, unweighted_payload,
             "unweighted importance: fraction of packages per API"),
    Endpoint("completeness", "POST", "/v1/completeness",
             normalize_completeness, completeness_payload,
             "weighted completeness of a supported-API set"),
    Endpoint("curve", "GET", "/v1/completeness/curve",
             normalize_curve, curve_payload,
             "the Figure 3 incremental implementation path"),
    Endpoint("plan", "POST", "/v1/advisor/plan",
             normalize_plan, plan_payload,
             "minimal workload set covering a modified-API set"),
    Endpoint("evaluate", "POST", "/v1/system/evaluate",
             normalize_evaluate, evaluate_payload,
             "Table 6 evaluation of an ad-hoc system model"),
    Endpoint("stats", "GET", "/v1/dataset/stats",
             normalize_stats, stats_payload,
             "interned dataset summary (dimensions, weights, edges)"),
    Endpoint("dep_semantics", "GET", "/v1/dataset/dep_semantics",
             normalize_dep_semantics, dep_semantics_payload,
             "AND-only vs AND-OR dependency-semantics ablation"),
    Endpoint("series_stats", "GET", "/v1/series/stats",
             normalize_series_stats, series_stats_payload,
             "release-train shape and delta storage economics",
             scope="series"),
    Endpoint("trend_importance", "GET", "/v1/trend/importance",
             normalize_trend_importance, trend_importance_payload,
             "per-release importance of an API set across releases",
             scope="series"),
    Endpoint("trend_completeness", "POST", "/v1/trend/completeness",
             normalize_trend_completeness, trend_completeness_payload,
             "weighted completeness of a fixed API set per release",
             scope="series"),
    Endpoint("release_diff", "GET", "/v1/release/diff",
             normalize_release_diff, release_diff_payload,
             "risers, fallers and migrations between two releases",
             scope="series"),
)

ENDPOINTS_BY_NAME: Dict[str, Endpoint] = {
    endpoint.name: endpoint for endpoint in ENDPOINTS}
