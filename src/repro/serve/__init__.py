"""repro.serve: a long-lived query layer over the warm Dataset.

The batch CLI pays the full pipeline cost — interpreter start, corpus
analysis or cache load, dataset interning — on every invocation, which
is the wrong shape for interactive exploration of the study's tables
(importance rankings, weighted completeness, the completeness curve,
advisor plans).  This package keeps one :class:`repro.dataset.Dataset`
warm behind an HTTP API and answers those queries in microseconds:

* :mod:`repro.serve.app` — framework-free request core: router,
  versioned JSON envelope, error taxonomy mapping;
* :mod:`repro.serve.server` — ``ThreadingHTTPServer`` transport with
  graceful shutdown and ``/healthz`` / ``/readyz`` probes;
* :mod:`repro.serve.endpoints` — the query surface, delegating to the
  exact :mod:`repro.metrics` / :mod:`repro.compat` entry points the
  CLI uses, so served results are bit-identical to batch results;
* :mod:`repro.serve.qcache` — bounded LRU+TTL result cache keyed on
  dataset fingerprint + canonical query;
* :mod:`repro.serve.admission` — bounded-concurrency admission control
  (429 + ``Retry-After`` under saturation) and per-request deadlines;
* :mod:`repro.serve.snapshot` — RCU-style atomic hot reload of the
  dataset with zero dropped in-flight requests, plus the multi-tenant
  :class:`SnapshotRegistry` and the :class:`SeriesHolder` that
  publishes a whole release train for ``?release=`` time travel;
* :mod:`repro.serve.workers` — pre-fork multi-worker serving: a
  supervisor binds one address, N worker processes mmap the same
  ``.rsnap`` snapshot, crashes restart with backoff, and SIGHUP fans
  the RCU reload out across the fleet.

``repro-analyze serve`` is the CLI front door (``--workers N`` for
the pre-fork mode).
"""

from .admission import (AdmissionController, Deadline,
                        DeadlineExceededError, OverloadedError)
from .app import (SERVE_SCHEMA, SERVE_SCHEMA_VERSION, Request,
                  Response, ServeApp, canonical_json)
from .endpoints import (ENDPOINTS, ENDPOINTS_BY_NAME, BadRequestError,
                        Endpoint, MethodNotAllowedError, NotFoundError,
                        ServeRequestError)
from .qcache import QueryCache, canonical_query_key
from .server import ServeServer, ThreadingTransport, reuse_port_available
from .snapshot import (DEFAULT_TENANT, DatasetSnapshot, ResolvedTarget,
                       SeriesHolder, SeriesSnapshot, SnapshotHolder,
                       SnapshotRegistry, holder_from_file)
from .workers import WorkerSettings, WorkerSupervisor, default_mode

__all__ = [
    "AdmissionController",
    "BadRequestError",
    "DEFAULT_TENANT",
    "DatasetSnapshot",
    "Deadline",
    "DeadlineExceededError",
    "ENDPOINTS",
    "ENDPOINTS_BY_NAME",
    "Endpoint",
    "MethodNotAllowedError",
    "NotFoundError",
    "OverloadedError",
    "QueryCache",
    "Request",
    "ResolvedTarget",
    "Response",
    "SERVE_SCHEMA",
    "SERVE_SCHEMA_VERSION",
    "SeriesHolder",
    "SeriesSnapshot",
    "ServeApp",
    "ServeRequestError",
    "ServeServer",
    "SnapshotHolder",
    "SnapshotRegistry",
    "ThreadingTransport",
    "WorkerSettings",
    "WorkerSupervisor",
    "canonical_json",
    "canonical_query_key",
    "default_mode",
    "holder_from_file",
    "reuse_port_available",
]
