"""ELF64 image parser.

This is the analysis-side counterpart of :mod:`repro.elf.writer`.  It is
deliberately written against the ELF specification rather than against
our writer's layout choices, so it also parses real system binaries.
"""

from __future__ import annotations

import struct as _struct
from typing import Dict, List, Optional

from . import constants as C
from .structs import (
    Dyn,
    ElfFormatError,
    ElfHeader,
    ProgramHeader,
    Rela,
    SectionHeader,
    StringTable,
    Symbol,
)


class ElfReader:
    """Parsed view over an ELF64 image held in memory."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        try:
            self.header = ElfHeader.unpack(data)
            self.program_headers = self._read_program_headers()
            self.sections = self._read_sections()
            self._section_by_name = {s.name: s
                                     for s in self.sections if s.name}
            self.dynamic = self._read_dynamic()
            self.dynamic_symbols = self._read_symbols(".dynsym",
                                                      ".dynstr")
            self.symbols = self._read_symbols(".symtab", ".strtab")
            self._annotate_symbol_versions()
        except (_struct.error, IndexError, OverflowError,
                UnicodeDecodeError) as error:
            # Truncated or corrupt image — lying offsets, sizes, or
            # string tables included: surface one exception type.
            raise ElfFormatError(str(error)) from error

    @classmethod
    def from_path(cls, path: str) -> "ElfReader":
        with open(path, "rb") as handle:
            return cls(handle.read())

    @staticmethod
    def is_elf(data: bytes) -> bool:
        return data[:4] == C.ELFMAG

    # --- low-level accessors ---------------------------------------------

    def _read_program_headers(self) -> List[ProgramHeader]:
        hdr = self.header
        return [
            ProgramHeader.unpack(self.data, hdr.e_phoff + i * hdr.e_phentsize)
            for i in range(hdr.e_phnum)
        ]

    def _read_sections(self) -> List[SectionHeader]:
        hdr = self.header
        sections = [
            SectionHeader.unpack(self.data, hdr.e_shoff + i * hdr.e_shentsize)
            for i in range(hdr.e_shnum)
        ]
        if sections and hdr.e_shstrndx < len(sections):
            shstr = sections[hdr.e_shstrndx]
            table = StringTable(
                self.data[shstr.sh_offset:shstr.sh_offset + shstr.sh_size])
            for section in sections:
                section.name = table.get(section.sh_name)
        return sections

    def section(self, name: str) -> Optional[SectionHeader]:
        """Look up a section header by name, or ``None``."""
        return self._section_by_name.get(name)

    def section_data(self, name: str) -> bytes:
        """Raw bytes of a section, or ``b""`` when absent."""
        section = self.section(name)
        if section is None or section.sh_type == C.SHT_NOBITS:
            return b""
        return self.data[section.sh_offset:section.sh_offset + section.sh_size]

    def vaddr_to_offset(self, vaddr: int) -> Optional[int]:
        """Translate a virtual address through the PT_LOAD segments."""
        for phdr in self.program_headers:
            if phdr.p_type == C.PT_LOAD and phdr.contains_vaddr(vaddr):
                return phdr.vaddr_to_offset(vaddr)
        return None

    def read_vaddr(self, vaddr: int, size: int) -> bytes:
        offset = self.vaddr_to_offset(vaddr)
        if offset is None:
            raise ElfFormatError(f"vaddr {vaddr:#x} is not mapped")
        return self.data[offset:offset + size]

    # --- symbols ----------------------------------------------------------

    def _read_symbols(self, symtab: str, strtab: str) -> List[Symbol]:
        sym_section = self.section(symtab)
        if sym_section is None:
            return []
        strings = StringTable(self.section_data(strtab))
        blob = self.section_data(symtab)
        symbols = []
        for offset in range(0, len(blob) - C.SYM_SIZE + 1, C.SYM_SIZE):
            symbol = Symbol.unpack(blob, offset)
            symbol.name = strings.get(symbol.st_name)
            symbols.append(symbol)
        return symbols

    def imported_symbols(self) -> List[Symbol]:
        """Undefined dynamic symbols: functions/objects bound at load time."""
        return [s for s in self.dynamic_symbols
                if s.is_undefined and s.name]

    def imported_function_names(self) -> List[str]:
        return [s.name for s in self.imported_symbols() if
                s.type in (C.STT_FUNC, C.STT_GNU_IFUNC, C.STT_NOTYPE)]

    def exported_symbols(self) -> List[Symbol]:
        """Defined global dynamic symbols (the binary's public ABI)."""
        return [s for s in self.dynamic_symbols if s.is_exported]

    def exported_function_names(self) -> List[str]:
        return [s.name for s in self.exported_symbols() if s.is_function]

    # --- dynamic section ----------------------------------------------------

    def _read_dynamic(self) -> List[Dyn]:
        blob = self.section_data(".dynamic")
        if not blob:
            for phdr in self.program_headers:
                if phdr.p_type == C.PT_DYNAMIC:
                    blob = self.data[
                        phdr.p_offset:phdr.p_offset + phdr.p_filesz]
                    break
        entries = []
        for offset in range(0, len(blob) - C.DYN_SIZE + 1, C.DYN_SIZE):
            entry = Dyn.unpack(blob, offset)
            entries.append(entry)
            if entry.d_tag == C.DT_NULL:
                break
        return entries

    def dynamic_entries(self, tag: int) -> List[int]:
        return [d.d_val for d in self.dynamic if d.d_tag == tag]

    def needed_libraries(self) -> List[str]:
        """``DT_NEEDED`` names resolved through ``DT_STRTAB``."""
        strtab_addrs = self.dynamic_entries(C.DT_STRTAB)
        if not strtab_addrs:
            return []
        strsz = (self.dynamic_entries(C.DT_STRSZ) or [0])[0]
        offset = self.vaddr_to_offset(strtab_addrs[0])
        if offset is None:
            return []
        strings = StringTable(self.data[offset:offset + strsz])
        return [strings.get(v) for v in self.dynamic_entries(C.DT_NEEDED)]

    def soname(self) -> Optional[str]:
        strtab_addrs = self.dynamic_entries(C.DT_STRTAB)
        names = self.dynamic_entries(C.DT_SONAME)
        if not strtab_addrs or not names:
            return None
        strsz = (self.dynamic_entries(C.DT_STRSZ) or [0])[0]
        offset = self.vaddr_to_offset(strtab_addrs[0])
        if offset is None:
            return None
        strings = StringTable(self.data[offset:offset + strsz])
        return strings.get(names[0])

    def interpreter(self) -> Optional[str]:
        """The requested program interpreter (PT_INTERP), if any."""
        for phdr in self.program_headers:
            if phdr.p_type == C.PT_INTERP:
                blob = self.data[phdr.p_offset:
                                 phdr.p_offset + phdr.p_filesz]
                return blob.rstrip(b"\x00").decode("utf-8",
                                                   errors="replace")
        return None

    @property
    def is_dynamic(self) -> bool:
        return bool(self.dynamic)

    @property
    def is_static_executable(self) -> bool:
        return self.header.e_type == C.ET_EXEC and not self.is_dynamic

    # --- GNU symbol versioning ---------------------------------------------

    def version_definitions(self) -> Dict[int, str]:
        """Version index -> name from ``.gnu.version_d`` (Verdef)."""
        blob = self.section_data(".gnu.version_d")
        strings = StringTable(self.section_data(".dynstr"))
        definitions: Dict[int, str] = {}
        offset = 0
        while offset + C.VERDEF_SIZE <= len(blob):
            (vd_version, vd_flags, vd_ndx, vd_cnt, vd_hash,
             vd_aux, vd_next) = _struct.unpack_from(
                "<HHHHIII", blob, offset)
            if vd_version != 1:
                break
            aux_offset = offset + vd_aux
            if aux_offset + C.VERDAUX_SIZE <= len(blob):
                vda_name, _ = _struct.unpack_from("<II", blob,
                                                  aux_offset)
                definitions[vd_ndx] = strings.get(vda_name)
            if vd_next == 0:
                break
            offset += vd_next
        return definitions

    def version_requirements(self) -> Dict[int, str]:
        """Version index -> name from ``.gnu.version_r`` (Verneed)."""
        blob = self.section_data(".gnu.version_r")
        strings = StringTable(self.section_data(".dynstr"))
        requirements: Dict[int, str] = {}
        offset = 0
        while offset + 16 <= len(blob):
            (vn_version, vn_cnt, vn_file, vn_aux,
             vn_next) = _struct.unpack_from("<HHIII", blob, offset)
            if vn_version != 1:
                break
            aux_offset = offset + vn_aux
            for _ in range(vn_cnt):
                if aux_offset + 16 > len(blob):
                    break
                (vna_hash, vna_flags, vna_other, vna_name,
                 vna_next) = _struct.unpack_from("<IHHII", blob,
                                                 aux_offset)
                requirements[vna_other & 0x7FFF] = strings.get(
                    vna_name)
                if vna_next == 0:
                    break
                aux_offset += vna_next
            if vn_next == 0:
                break
            offset += vn_next
        return requirements

    def _annotate_symbol_versions(self) -> None:
        blob = self.section_data(".gnu.version")
        if not blob:
            return
        names = {**self.version_definitions(),
                 **self.version_requirements()}
        count = min(len(blob) // 2, len(self.dynamic_symbols))
        for position in range(count):
            (index,) = _struct.unpack_from("<H", blob, position * 2)
            index &= 0x7FFF  # high bit = hidden
            if index in names:
                self.dynamic_symbols[position].version = names[index]

    # --- PLT resolution -------------------------------------------------

    def plt_relocations(self) -> List[Rela]:
        blob = self.section_data(".rela.plt")
        return [Rela.unpack(blob, off)
                for off in range(0, len(blob) - C.RELA_SIZE + 1, C.RELA_SIZE)]

    def plt_map(self) -> Dict[int, str]:
        """Map each PLT stub virtual address to its imported symbol name.

        Stubs are recognized by their canonical ``jmp *disp32(%rip)``
        encoding (``ff 25``); the GOT slot they dereference is matched
        against ``R_X86_64_JUMP_SLOT`` relocation offsets.
        """
        plt_section = self.section(".plt")
        if plt_section is None:
            return {}
        got_to_symbol: Dict[int, str] = {}
        for rela in self.plt_relocations():
            if rela.type != C.R_X86_64_JUMP_SLOT:
                continue
            if rela.sym < len(self.dynamic_symbols):
                got_to_symbol[rela.r_offset] = (
                    self.dynamic_symbols[rela.sym].name)
        blob = self.section_data(".plt")
        base = plt_section.sh_addr
        mapping: Dict[int, str] = {}
        pos = 0
        while pos + 6 <= len(blob):
            if blob[pos:pos + 2] == b"\xff\x25":
                disp = int.from_bytes(blob[pos + 2:pos + 6], "little",
                                      signed=True)
                got_addr = base + pos + 6 + disp
                name = got_to_symbol.get(got_addr)
                if name:
                    mapping[base + pos] = name
            pos += 1
        return mapping

    # --- convenience ------------------------------------------------------

    def text(self) -> bytes:
        return self.section_data(".text")

    def text_vaddr(self) -> int:
        section = self.section(".text")
        return section.sh_addr if section is not None else 0

    def rodata(self) -> bytes:
        return self.section_data(".rodata")

    def strings(self, min_length: int = 4) -> List[str]:
        """Extract printable ASCII strings from data sections.

        Mirrors the classic ``strings(1)`` pass the paper's framework
        uses to find hard-coded pseudo-file paths.
        """
        found: List[str] = []
        for name in (".rodata", ".data", ".data.rel.ro"):
            blob = self.section_data(name)
            run = bytearray()
            for byte in blob:
                if 0x20 <= byte < 0x7F:
                    run.append(byte)
                else:
                    if len(run) >= min_length:
                        found.append(run.decode("ascii"))
                    run = bytearray()
            if len(run) >= min_length:
                found.append(run.decode("ascii"))
        return found
