"""Typed codecs for the on-disk ELF64 structures.

Each dataclass mirrors one C struct from ``<elf.h>`` and knows how to
``pack`` itself to bytes and ``unpack`` itself from a buffer.  All codecs
are little-endian (``ELFDATA2LSB``), which is the only encoding used by
x86-64 Linux.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from . import constants as C

_EHDR = struct.Struct("<16sHHIQQQIHHHHHH")
_PHDR = struct.Struct("<IIQQQQQQ")
_SHDR = struct.Struct("<IIQQQQIIQQ")
_SYM = struct.Struct("<IBBHQQ")
_RELA = struct.Struct("<QQq")
_DYN = struct.Struct("<qQ")


class ElfFormatError(ValueError):
    """Raised when a buffer does not contain a well-formed ELF64 image."""


@dataclass
class ElfHeader:
    """ELF file header (``Elf64_Ehdr``)."""

    e_ident: bytes = b""
    e_type: int = C.ET_EXEC
    e_machine: int = C.EM_X86_64
    e_version: int = C.EV_CURRENT
    e_entry: int = 0
    e_phoff: int = 0
    e_shoff: int = 0
    e_flags: int = 0
    e_ehsize: int = C.EHDR_SIZE
    e_phentsize: int = C.PHDR_SIZE
    e_phnum: int = 0
    e_shentsize: int = C.SHDR_SIZE
    e_shnum: int = 0
    e_shstrndx: int = 0

    def __post_init__(self) -> None:
        if not self.e_ident:
            ident = bytearray(C.EI_NIDENT)
            ident[0:4] = C.ELFMAG
            ident[C.EI_CLASS] = C.ELFCLASS64
            ident[C.EI_DATA] = C.ELFDATA2LSB
            ident[C.EI_VERSION] = C.EV_CURRENT
            ident[C.EI_OSABI] = C.ELFOSABI_SYSV
            self.e_ident = bytes(ident)

    def pack(self) -> bytes:
        return _EHDR.pack(
            self.e_ident, self.e_type, self.e_machine, self.e_version,
            self.e_entry, self.e_phoff, self.e_shoff, self.e_flags,
            self.e_ehsize, self.e_phentsize, self.e_phnum,
            self.e_shentsize, self.e_shnum, self.e_shstrndx,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "ElfHeader":
        if len(data) < C.EHDR_SIZE:
            raise ElfFormatError("buffer too small for ELF header")
        fields = _EHDR.unpack_from(data)
        hdr = cls(*fields)
        if hdr.e_ident[0:4] != C.ELFMAG:
            raise ElfFormatError("bad ELF magic")
        if hdr.e_ident[C.EI_CLASS] != C.ELFCLASS64:
            raise ElfFormatError("only ELF64 is supported")
        if hdr.e_ident[C.EI_DATA] != C.ELFDATA2LSB:
            raise ElfFormatError("only little-endian ELF is supported")
        return hdr

    @property
    def is_executable(self) -> bool:
        return self.e_type in (C.ET_EXEC, C.ET_DYN) and self.e_entry != 0

    @property
    def is_shared_object(self) -> bool:
        return self.e_type == C.ET_DYN


@dataclass
class ProgramHeader:
    """Program (segment) header (``Elf64_Phdr``)."""

    p_type: int = C.PT_LOAD
    p_flags: int = C.PF_R
    p_offset: int = 0
    p_vaddr: int = 0
    p_paddr: int = 0
    p_filesz: int = 0
    p_memsz: int = 0
    p_align: int = C.PAGE_SIZE

    def pack(self) -> bytes:
        return _PHDR.pack(
            self.p_type, self.p_flags, self.p_offset, self.p_vaddr,
            self.p_paddr, self.p_filesz, self.p_memsz, self.p_align,
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "ProgramHeader":
        return cls(*_PHDR.unpack_from(data, offset))

    def contains_vaddr(self, vaddr: int) -> bool:
        return self.p_vaddr <= vaddr < self.p_vaddr + self.p_memsz

    def vaddr_to_offset(self, vaddr: int) -> int:
        if not self.contains_vaddr(vaddr):
            raise ValueError(f"vaddr {vaddr:#x} outside segment")
        return self.p_offset + (vaddr - self.p_vaddr)


@dataclass
class SectionHeader:
    """Section header (``Elf64_Shdr``).  ``name`` is resolved lazily."""

    sh_name: int = 0
    sh_type: int = C.SHT_NULL
    sh_flags: int = 0
    sh_addr: int = 0
    sh_offset: int = 0
    sh_size: int = 0
    sh_link: int = 0
    sh_info: int = 0
    sh_addralign: int = 1
    sh_entsize: int = 0
    name: str = field(default="", compare=False)

    def pack(self) -> bytes:
        return _SHDR.pack(
            self.sh_name, self.sh_type, self.sh_flags, self.sh_addr,
            self.sh_offset, self.sh_size, self.sh_link, self.sh_info,
            self.sh_addralign, self.sh_entsize,
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "SectionHeader":
        return cls(*_SHDR.unpack_from(data, offset))


@dataclass
class Symbol:
    """Symbol table entry (``Elf64_Sym``) plus its resolved name."""

    st_name: int = 0
    st_info: int = 0
    st_other: int = C.STV_DEFAULT
    st_shndx: int = C.SHN_UNDEF
    st_value: int = 0
    st_size: int = 0
    name: str = field(default="", compare=False)
    # GNU symbol version ("GLIBC_2.2.5"), resolved by the reader when
    # the image carries .gnu.version tables.
    version: str = field(default="", compare=False)

    def pack(self) -> bytes:
        return _SYM.pack(
            self.st_name, self.st_info, self.st_other,
            self.st_shndx, self.st_value, self.st_size,
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "Symbol":
        return cls(*_SYM.unpack_from(data, offset))

    @property
    def bind(self) -> int:
        return C.st_bind(self.st_info)

    @property
    def type(self) -> int:
        return C.st_type(self.st_info)

    @property
    def is_undefined(self) -> bool:
        return self.st_shndx == C.SHN_UNDEF

    @property
    def is_function(self) -> bool:
        return self.type in (C.STT_FUNC, C.STT_GNU_IFUNC)

    @property
    def is_exported(self) -> bool:
        return (not self.is_undefined and self.name != ""
                and self.bind in (C.STB_GLOBAL, C.STB_WEAK)
                and self.st_other == C.STV_DEFAULT)


@dataclass
class Rela:
    """Relocation with addend (``Elf64_Rela``)."""

    r_offset: int = 0
    r_info: int = 0
    r_addend: int = 0

    def pack(self) -> bytes:
        return _RELA.pack(self.r_offset, self.r_info, self.r_addend)

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "Rela":
        return cls(*_RELA.unpack_from(data, offset))

    @property
    def sym(self) -> int:
        return C.r_sym(self.r_info)

    @property
    def type(self) -> int:
        return C.r_type(self.r_info)


@dataclass
class Dyn:
    """Dynamic section entry (``Elf64_Dyn``)."""

    d_tag: int = C.DT_NULL
    d_val: int = 0

    def pack(self) -> bytes:
        return _DYN.pack(self.d_tag, self.d_val)

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "Dyn":
        return cls(*_DYN.unpack_from(data, offset))

    @property
    def tag_name(self) -> str:
        return C.DT_NAMES.get(self.d_tag, f"0x{self.d_tag:x}")


def elf_hash(name: str) -> int:
    """The SysV ELF hash (used for Verdef.vd_hash)."""
    value = 0
    for char in name.encode("utf-8"):
        value = ((value << 4) + char) & 0xFFFFFFFF
        high = value & 0xF0000000
        if high:
            value ^= high >> 24
        value &= ~high & 0xFFFFFFFF
    return value


class StringTable:
    """Builder/reader for ELF string tables (``.strtab`` style blobs)."""

    def __init__(self, data: bytes = b"\x00") -> None:
        self._data = bytearray(data)
        self._offsets: dict[str, int] = {}

    def add(self, name: str) -> int:
        """Intern ``name``, returning its offset within the table."""
        if not name:
            return 0
        if name in self._offsets:
            return self._offsets[name]
        offset = len(self._data)
        self._data += name.encode("utf-8") + b"\x00"
        self._offsets[name] = offset
        return offset

    def get(self, offset: int) -> str:
        """Read the NUL-terminated string at ``offset``."""
        if offset >= len(self._data):
            return ""
        end = self._data.find(b"\x00", offset)
        if end < 0:
            end = len(self._data)
        return self._data[offset:end].decode("utf-8", errors="replace")

    def pack(self) -> bytes:
        return bytes(self._data)

    def __len__(self) -> int:
        return len(self._data)
