"""ELF64 format constants.

Only the subset of the ELF specification that the analysis framework and
the synthetic binary generator need is defined here, but the names and
values follow ``<elf.h>`` exactly so the reader also works on real
binaries (e.g. ``/bin/true`` on the host).
"""

# --- e_ident layout -------------------------------------------------------

ELFMAG = b"\x7fELF"
EI_CLASS = 4
EI_DATA = 5
EI_VERSION = 6
EI_OSABI = 7
EI_ABIVERSION = 8
EI_NIDENT = 16

ELFCLASS32 = 1
ELFCLASS64 = 2

ELFDATA2LSB = 1  # little endian
ELFDATA2MSB = 2  # big endian

EV_CURRENT = 1

ELFOSABI_SYSV = 0
ELFOSABI_LINUX = 3

# --- e_type ---------------------------------------------------------------

ET_NONE = 0
ET_REL = 1
ET_EXEC = 2
ET_DYN = 3
ET_CORE = 4

ET_NAMES = {
    ET_NONE: "NONE",
    ET_REL: "REL",
    ET_EXEC: "EXEC",
    ET_DYN: "DYN",
    ET_CORE: "CORE",
}

# --- e_machine ------------------------------------------------------------

EM_386 = 3
EM_X86_64 = 62
EM_AARCH64 = 183

# --- program header types -------------------------------------------------

PT_NULL = 0
PT_LOAD = 1
PT_DYNAMIC = 2
PT_INTERP = 3
PT_NOTE = 4
PT_PHDR = 6
PT_GNU_STACK = 0x6474E551

PF_X = 1
PF_W = 2
PF_R = 4

# --- section header types -------------------------------------------------

SHT_NULL = 0
SHT_PROGBITS = 1
SHT_SYMTAB = 2
SHT_STRTAB = 3
SHT_RELA = 4
SHT_HASH = 5
SHT_DYNAMIC = 6
SHT_NOTE = 7
SHT_NOBITS = 8
SHT_REL = 9
SHT_DYNSYM = 11
SHT_GNU_VERDEF = 0x6FFFFFFD
SHT_GNU_VERNEED = 0x6FFFFFFE
SHT_GNU_VERSYM = 0x6FFFFFFF

SHF_WRITE = 0x1
SHF_ALLOC = 0x2
SHF_EXECINSTR = 0x4

SHN_UNDEF = 0
SHN_ABS = 0xFFF1

# --- symbol table ---------------------------------------------------------

STB_LOCAL = 0
STB_GLOBAL = 1
STB_WEAK = 2

STT_NOTYPE = 0
STT_OBJECT = 1
STT_FUNC = 2
STT_SECTION = 3
STT_FILE = 4
STT_GNU_IFUNC = 10

STV_DEFAULT = 0
STV_HIDDEN = 2


def st_info(bind: int, typ: int) -> int:
    """Pack symbol binding and type into the ``st_info`` byte."""
    return (bind << 4) | (typ & 0xF)


def st_bind(info: int) -> int:
    return info >> 4


def st_type(info: int) -> int:
    return info & 0xF


# --- dynamic section tags ---------------------------------------------------

DT_NULL = 0
DT_NEEDED = 1
DT_PLTRELSZ = 2
DT_PLTGOT = 3
DT_HASH = 4
DT_STRTAB = 5
DT_SYMTAB = 6
DT_RELA = 7
DT_RELASZ = 8
DT_RELAENT = 9
DT_STRSZ = 10
DT_SYMENT = 11
DT_INIT = 12
DT_FINI = 13
DT_SONAME = 14
DT_RPATH = 15
DT_SYMBOLIC = 16
DT_REL = 17
DT_JMPREL = 23
DT_RUNPATH = 29
DT_VERSYM = 0x6FFFFFF0
DT_VERDEF = 0x6FFFFFFC
DT_VERDEFNUM = 0x6FFFFFFD
DT_VERNEED = 0x6FFFFFFE
DT_VERNEEDNUM = 0x6FFFFFFF

DT_NAMES = {
    DT_NULL: "NULL",
    DT_NEEDED: "NEEDED",
    DT_PLTRELSZ: "PLTRELSZ",
    DT_PLTGOT: "PLTGOT",
    DT_HASH: "HASH",
    DT_STRTAB: "STRTAB",
    DT_SYMTAB: "SYMTAB",
    DT_RELA: "RELA",
    DT_RELASZ: "RELASZ",
    DT_RELAENT: "RELAENT",
    DT_STRSZ: "STRSZ",
    DT_SYMENT: "SYMENT",
    DT_INIT: "INIT",
    DT_FINI: "FINI",
    DT_SONAME: "SONAME",
    DT_RPATH: "RPATH",
    DT_SYMBOLIC: "SYMBOLIC",
    DT_REL: "REL",
    DT_JMPREL: "JMPREL",
    DT_RUNPATH: "RUNPATH",
    DT_VERSYM: "VERSYM",
    DT_VERDEF: "VERDEF",
    DT_VERDEFNUM: "VERDEFNUM",
    DT_VERNEED: "VERNEED",
    DT_VERNEEDNUM: "VERNEEDNUM",
}

# Reserved version indices in .gnu.version.
VER_NDX_LOCAL = 0
VER_NDX_GLOBAL = 1
# First definable version index (our writer defines exactly one).
VER_NDX_BASE_DEFINED = 2

VERDEF_SIZE = 20   # Elf64_Verdef
VERDAUX_SIZE = 8   # Elf64_Verdaux

# --- x86-64 relocation types ------------------------------------------------

R_X86_64_NONE = 0
R_X86_64_64 = 1
R_X86_64_PC32 = 2
R_X86_64_GLOB_DAT = 6
R_X86_64_JUMP_SLOT = 7
R_X86_64_RELATIVE = 8


def r_info(sym: int, typ: int) -> int:
    """Pack a relocation's symbol index and type into ``r_info``."""
    return (sym << 32) | (typ & 0xFFFFFFFF)


def r_sym(info: int) -> int:
    return info >> 32


def r_type(info: int) -> int:
    return info & 0xFFFFFFFF


# --- struct sizes (ELF64) ---------------------------------------------------

EHDR_SIZE = 64
PHDR_SIZE = 56
SHDR_SIZE = 64
SYM_SIZE = 24
RELA_SIZE = 24
DYN_SIZE = 16

# Canonical load address used by the synthetic binary generator for
# ET_EXEC images; matches the traditional x86-64 Linux link base.
DEFAULT_BASE_VADDR = 0x400000
PAGE_SIZE = 0x1000
