"""From-scratch ELF64 reading and writing.

The writer produces structurally realistic executables and shared
libraries for the synthetic ecosystem; the reader parses any ELF64
little-endian image (including real system binaries) for the static
analysis pipeline.
"""

from . import constants
from .reader import ElfReader
from .structs import (
    Dyn,
    ElfFormatError,
    ElfHeader,
    ProgramHeader,
    Rela,
    SectionHeader,
    StringTable,
    Symbol,
)
from .writer import ElfWriter, Fixup, PLT_STUB_SIZE

__all__ = [
    "constants",
    "Dyn",
    "ElfFormatError",
    "ElfHeader",
    "ElfReader",
    "ElfWriter",
    "Fixup",
    "PLT_STUB_SIZE",
    "ProgramHeader",
    "Rela",
    "SectionHeader",
    "StringTable",
    "Symbol",
]
