"""ELF64 image builder.

The synthetic ecosystem generator uses this module to emit executables
and shared libraries that are structurally faithful to what a linker
produces on x86-64 Linux: a file header, program headers, ``.dynsym`` /
``.dynstr`` / ``.dynamic`` with ``DT_NEEDED`` entries, a ``.plt`` whose
stubs jump through ``.got.plt`` slots bound by ``R_X86_64_JUMP_SLOT``
relocations, ``.text``, ``.rodata``, and a full section header table.

Code is supplied as raw bytes plus *fixups*: symbolic references to
import stubs, local labels, or ``.rodata`` offsets that the writer
patches once the layout is final.  This mirrors the relocation step of a
real linker and lets the code generator stay layout-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from . import constants as C
from .structs import (
    Dyn,
    ElfHeader,
    ProgramHeader,
    Rela,
    SectionHeader,
    StringTable,
    Symbol,
)

PLT_STUB_SIZE = 16


@dataclass(frozen=True)
class Fixup:
    """A patch site inside ``.text``.

    ``text_offset`` addresses the 4-byte displacement field itself (not
    the start of the instruction).  ``kind`` is either ``"rel32"`` (a
    ``call``/``jmp`` displacement, relative to the end of the field) or
    ``"rip32"`` (a RIP-relative data displacement, same arithmetic).
    ``target`` is one of::

        ("import", symbol_name)   -> the symbol's PLT stub
        ("local", label)          -> a label inside .text
        ("rodata", data_offset)   -> a byte offset within .rodata
    """

    text_offset: int
    kind: str
    target: Tuple[str, object]


class ElfWriter:
    """Accumulates content, then :meth:`build` emits the final image."""

    def __init__(
        self,
        file_type: int = C.ET_EXEC,
        soname: Optional[str] = None,
        base_vaddr: int = C.DEFAULT_BASE_VADDR,
        interp: Optional[str] = "/lib64/ld-linux-x86-64.so.2",
        version: Optional[str] = None,
    ) -> None:
        """``version`` stamps every export with one GNU symbol version
        (e.g. ``"GLIBC_2.2.5"``), emitting ``.gnu.version`` and
        ``.gnu.version_d`` like a versioned system library."""
        self.file_type = file_type
        self.soname = soname
        self.version = version
        self.base_vaddr = base_vaddr if file_type == C.ET_EXEC else 0
        self.interp = interp if file_type == C.ET_EXEC else None
        self.needed: List[str] = []
        self._imports: List[str] = []
        self._import_index: Dict[str, int] = {}
        self._exports: Dict[str, str] = {}  # symbol name -> text label
        self._text = b""
        self._labels: Dict[str, int] = {}
        self._fixups: List[Fixup] = []
        self._rodata = bytearray()
        self._rodata_offsets: Dict[bytes, int] = {}
        self.entry_label: Optional[str] = None

    # --- content accumulation ------------------------------------------

    def add_needed(self, library: str) -> None:
        """Record a ``DT_NEEDED`` dependency (e.g. ``"libc.so.6"``)."""
        if library not in self.needed:
            self.needed.append(library)

    def add_import(self, name: str) -> int:
        """Declare an undefined function symbol; returns its PLT index."""
        if name in self._import_index:
            return self._import_index[name]
        index = len(self._imports)
        self._imports.append(name)
        self._import_index[name] = index
        return index

    def add_rodata(self, data: bytes) -> int:
        """Intern a blob in ``.rodata``; returns its offset."""
        if data in self._rodata_offsets:
            return self._rodata_offsets[data]
        offset = len(self._rodata)
        self._rodata += data
        self._rodata_offsets[data] = offset
        return offset

    def add_string(self, text: str) -> int:
        """Intern a NUL-terminated C string in ``.rodata``."""
        return self.add_rodata(text.encode("utf-8") + b"\x00")

    def set_text(
        self,
        code: bytes,
        labels: Dict[str, int],
        fixups: List[Fixup],
        entry_label: Optional[str] = None,
    ) -> None:
        """Install the ``.text`` payload and its symbolic metadata."""
        self._text = bytes(code)
        self._labels = dict(labels)
        self._fixups = list(fixups)
        self.entry_label = entry_label

    def export_function(self, name: str, label: str) -> None:
        """Export ``label`` (a ``.text`` label) as global symbol ``name``."""
        self._exports[name] = label

    @property
    def imports(self) -> List[str]:
        return list(self._imports)

    # --- layout and emission --------------------------------------------

    def build(self) -> bytes:
        """Lay out all sections and return the complete ELF image."""
        dynstr = StringTable()
        dynsym: List[Symbol] = [Symbol()]  # index 0 is the NULL symbol
        sym_index: Dict[str, int] = {}
        for name in self._imports:
            dynstr.add(name)
            sym_index[name] = len(dynsym)
            dynsym.append(Symbol(
                st_name=dynstr.add(name),
                st_info=C.st_info(C.STB_GLOBAL, C.STT_FUNC),
                st_shndx=C.SHN_UNDEF,
                name=name,
            ))
        for library in self.needed:
            dynstr.add(library)
        if self.soname:
            dynstr.add(self.soname)
        export_sym_slots: Dict[str, int] = {}
        for name in self._exports:
            export_sym_slots[name] = len(dynsym)
            dynsym.append(Symbol(
                st_name=dynstr.add(name),
                st_info=C.st_info(C.STB_GLOBAL, C.STT_FUNC),
                st_shndx=1,  # patched below once .text gets its index
                name=name,
            ))

        n_plt = len(self._imports)
        interp_bytes = (
            self.interp.encode() + b"\x00" if self.interp else b""
        )
        # A binary with no dependencies, imports, or SONAME is written
        # as a genuinely static image: no .dynamic, no .dynsym, no
        # PT_INTERP — its symbols go into .symtab instead.
        is_static = (not self.needed and not self._imports
                     and self.soname is None and not interp_bytes
                     and self.file_type == C.ET_EXEC)

        # Fixed-order layout.  Every section is packed sequentially with
        # simple alignment; one RWX PT_LOAD maps the whole file, which is
        # all the static analyzer requires.
        if is_static:
            phdr_count = 2  # LOAD, GNU_STACK
        else:
            phdr_count = 2 + (1 if interp_bytes else 0) + 1
        cursor = C.EHDR_SIZE + phdr_count * C.PHDR_SIZE

        def align(value: int, alignment: int) -> int:
            return (value + alignment - 1) & ~(alignment - 1)

        layout: Dict[str, Tuple[int, int]] = {}  # name -> (offset, size)

        def place(name: str, size: int, alignment: int = 8) -> int:
            nonlocal cursor
            cursor = align(cursor, alignment)
            layout[name] = (cursor, size)
            cursor += size
            return layout[name][0]

        use_versions = self.version is not None and not (
            not self.needed and not self._imports
            and self.soname is None and not interp_bytes
            and self.file_type == C.ET_EXEC)
        if use_versions:
            dynstr.add(self.version)
        dynstr_blob = dynstr.pack()
        if interp_bytes:
            place(".interp", len(interp_bytes), 1)
        if not is_static:
            place(".dynsym", len(dynsym) * C.SYM_SIZE)
            place(".dynstr", len(dynstr_blob), 1)
            if use_versions:
                place(".gnu.version", len(dynsym) * 2, 2)
                place(".gnu.version_d",
                      C.VERDEF_SIZE + C.VERDAUX_SIZE, 8)
            place(".rela.plt", n_plt * C.RELA_SIZE)
            place(".plt", n_plt * PLT_STUB_SIZE, 16)
        place(".text", len(self._text), 16)
        place(".rodata", len(self._rodata), 8)
        if not is_static:
            place(".got.plt", n_plt * 8)
            # dynamic entries: NEEDED*, [SONAME], [VERSYM, VERDEF,
            # VERDEFNUM], STRTAB, SYMTAB, STRSZ, SYMENT, PLTGOT,
            # PLTRELSZ, JMPREL, RELAENT, NULL
            dyn_count = (len(self.needed)
                         + (1 if self.soname else 0)
                         + (3 if use_versions else 0) + 9)
            place(".dynamic", dyn_count * C.DYN_SIZE)
        else:
            # Static symbol table for exports (non-alloc but placed
            # inline for simplicity).
            place(".symtab", len(dynsym) * C.SYM_SIZE)
            place(".strtab", len(dynstr_blob), 1)

        base = self.base_vaddr

        def vaddr(section: str) -> int:
            return base + layout[section][0]

        # --- resolve fixups ---
        text_vaddr = vaddr(".text")
        plt_vaddr = vaddr(".plt") if ".plt" in layout else 0
        rodata_vaddr = vaddr(".rodata")
        text = bytearray(self._text)
        for fixup in self._fixups:
            kind, payload = fixup.target
            if kind == "import":
                target = plt_vaddr + self._import_index[payload] * PLT_STUB_SIZE
            elif kind == "local":
                target = text_vaddr + self._labels[payload]
            elif kind == "rodata":
                target = rodata_vaddr + int(payload)
            else:
                raise ValueError(f"unknown fixup target kind: {kind!r}")
            site = text_vaddr + fixup.text_offset
            rel = target - (site + 4)
            text[fixup.text_offset:fixup.text_offset + 4] = (
                rel & 0xFFFFFFFF).to_bytes(4, "little")

        # --- PLT stubs and GOT slots ---
        got_vaddr = vaddr(".got.plt") if ".got.plt" in layout else 0
        plt = bytearray()
        for i in range(n_plt):
            slot = got_vaddr + i * 8
            stub_end = plt_vaddr + i * PLT_STUB_SIZE + 6
            disp = slot - stub_end
            stub = b"\xff\x25" + (disp & 0xFFFFFFFF).to_bytes(4, "little")
            stub += b"\x0f\x1f\x80\x00\x00\x00\x00"  # nop padding
            stub += b"\x90" * (PLT_STUB_SIZE - len(stub))
            plt += stub
        got = b"\x00" * (n_plt * 8)

        relas = b"".join(
            Rela(
                r_offset=got_vaddr + i * 8,
                r_info=C.r_info(sym_index[name], C.R_X86_64_JUMP_SLOT),
            ).pack()
            for i, name in enumerate(self._imports)
        )

        # --- patch export symbol values / entry ---
        for name, label in self._exports.items():
            dynsym[export_sym_slots[name]].st_value = (
                text_vaddr + self._labels[label])
        entry = 0
        if self.entry_label is not None:
            entry = text_vaddr + self._labels[self.entry_label]

        # --- dynamic section ---
        dynamic = b""
        if not is_static:
            dyn_entries: List[Dyn] = []
            for library in self.needed:
                dyn_entries.append(
                    Dyn(C.DT_NEEDED, dynstr.add(library)))
            if self.soname:
                dyn_entries.append(
                    Dyn(C.DT_SONAME, dynstr.add(self.soname)))
            if use_versions:
                dyn_entries.append(
                    Dyn(C.DT_VERSYM, vaddr(".gnu.version")))
                dyn_entries.append(
                    Dyn(C.DT_VERDEF, vaddr(".gnu.version_d")))
                dyn_entries.append(Dyn(C.DT_VERDEFNUM, 1))
            dyn_entries += [
                Dyn(C.DT_STRTAB, vaddr(".dynstr")),
                Dyn(C.DT_SYMTAB, vaddr(".dynsym")),
                Dyn(C.DT_STRSZ, len(dynstr_blob)),
                Dyn(C.DT_SYMENT, C.SYM_SIZE),
                Dyn(C.DT_PLTGOT, got_vaddr),
                Dyn(C.DT_PLTRELSZ, n_plt * C.RELA_SIZE),
                Dyn(C.DT_JMPREL, vaddr(".rela.plt")),
                Dyn(C.DT_RELAENT, C.RELA_SIZE),
                Dyn(C.DT_NULL, 0),
            ]
            dynamic = b"".join(entry_.pack()
                               for entry_ in dyn_entries)

        # --- section header table ---
        shstrtab = StringTable()
        sections: List[SectionHeader] = [SectionHeader()]  # SHT_NULL

        def add_section(name: str, sh_type: int, flags: int,
                        entsize: int = 0, link: int = 0) -> int:
            offset, size = layout[name]
            sections.append(SectionHeader(
                sh_name=shstrtab.add(name), sh_type=sh_type,
                sh_flags=flags, sh_addr=base + offset, sh_offset=offset,
                sh_size=size, sh_link=link, sh_entsize=entsize, name=name,
            ))
            return len(sections) - 1

        if interp_bytes:
            add_section(".interp", C.SHT_PROGBITS, C.SHF_ALLOC)
        if not is_static:
            dynsym_idx = add_section(".dynsym", C.SHT_DYNSYM,
                                     C.SHF_ALLOC, entsize=C.SYM_SIZE)
            dynstr_idx = add_section(".dynstr", C.SHT_STRTAB,
                                     C.SHF_ALLOC)
            sections[dynsym_idx].sh_link = dynstr_idx
            if use_versions:
                add_section(".gnu.version", C.SHT_GNU_VERSYM,
                            C.SHF_ALLOC, entsize=2, link=dynsym_idx)
                add_section(".gnu.version_d", C.SHT_GNU_VERDEF,
                            C.SHF_ALLOC, link=dynstr_idx)
            add_section(".rela.plt", C.SHT_RELA, C.SHF_ALLOC,
                        entsize=C.RELA_SIZE, link=dynsym_idx)
            add_section(".plt", C.SHT_PROGBITS,
                        C.SHF_ALLOC | C.SHF_EXECINSTR)
        text_idx = add_section(".text", C.SHT_PROGBITS,
                               C.SHF_ALLOC | C.SHF_EXECINSTR)
        add_section(".rodata", C.SHT_PROGBITS, C.SHF_ALLOC)
        if not is_static:
            add_section(".got.plt", C.SHT_PROGBITS,
                        C.SHF_ALLOC | C.SHF_WRITE)
            add_section(".dynamic", C.SHT_DYNAMIC,
                        C.SHF_ALLOC | C.SHF_WRITE,
                        entsize=C.DYN_SIZE, link=dynstr_idx)
        else:
            symtab_idx = add_section(".symtab", C.SHT_SYMTAB,
                                     0, entsize=C.SYM_SIZE)
            strtab_idx = add_section(".strtab", C.SHT_STRTAB, 0)
            sections[symtab_idx].sh_link = strtab_idx
        for name in self._exports:
            dynsym[export_sym_slots[name]].st_shndx = text_idx

        dynsym_blob = b"".join(sym.pack() for sym in dynsym)

        # shstrtab itself goes after all laid-out content
        shstr_name_off = shstrtab.add(".shstrtab")
        shstr_blob_len_guess = len(shstrtab.pack())
        shstrtab_offset = align(cursor, 8)
        sections.append(SectionHeader(
            sh_name=shstr_name_off, sh_type=C.SHT_STRTAB,
            sh_offset=shstrtab_offset, sh_size=shstr_blob_len_guess,
            name=".shstrtab",
        ))
        shstrtab_blob = shstrtab.pack()
        sections[-1].sh_size = len(shstrtab_blob)
        shoff = align(shstrtab_offset + len(shstrtab_blob), 8)

        # --- program headers ---
        file_end = shoff + len(sections) * C.SHDR_SIZE
        phdrs: List[ProgramHeader] = []
        if interp_bytes:
            off, size = layout[".interp"]
            phdrs.append(ProgramHeader(
                p_type=C.PT_INTERP, p_flags=C.PF_R, p_offset=off,
                p_vaddr=base + off, p_paddr=base + off,
                p_filesz=size, p_memsz=size, p_align=1,
            ))
        load_end_section = ".dynamic" if not is_static else ".strtab"
        load_size = (layout[load_end_section][0]
                     + layout[load_end_section][1])
        phdrs.append(ProgramHeader(
            p_type=C.PT_LOAD, p_flags=C.PF_R | C.PF_W | C.PF_X,
            p_offset=0, p_vaddr=base, p_paddr=base,
            p_filesz=load_size, p_memsz=load_size,
        ))
        if not is_static:
            dyn_off, dyn_size = layout[".dynamic"]
            phdrs.append(ProgramHeader(
                p_type=C.PT_DYNAMIC, p_flags=C.PF_R | C.PF_W,
                p_offset=dyn_off, p_vaddr=base + dyn_off,
                p_paddr=base + dyn_off, p_filesz=dyn_size,
                p_memsz=dyn_size, p_align=8,
            ))
        phdrs.append(ProgramHeader(
            p_type=C.PT_GNU_STACK, p_flags=C.PF_R | C.PF_W,
            p_align=0x10,
        ))

        header = ElfHeader(
            e_type=self.file_type,
            e_entry=entry,
            e_phoff=C.EHDR_SIZE,
            e_shoff=shoff,
            e_phnum=len(phdrs),
            e_shnum=len(sections),
            e_shstrndx=len(sections) - 1,
        )

        # --- assemble the file ---
        image = bytearray(file_end)
        image[0:C.EHDR_SIZE] = header.pack()
        pos = C.EHDR_SIZE
        for phdr in phdrs:
            image[pos:pos + C.PHDR_SIZE] = phdr.pack()
            pos += C.PHDR_SIZE

        def emit(name: str, blob: bytes) -> None:
            offset, size = layout[name]
            if len(blob) != size:
                raise AssertionError(
                    f"{name}: laid out {size} bytes, emitting {len(blob)}")
            image[offset:offset + size] = blob

        if interp_bytes:
            emit(".interp", interp_bytes)
        if not is_static:
            emit(".dynsym", dynsym_blob)
            emit(".dynstr", dynstr_blob)
            if use_versions:
                import struct as _s
                from .structs import elf_hash
                versym = bytearray()
                for position, symbol in enumerate(dynsym):
                    if position == 0:
                        index = C.VER_NDX_LOCAL
                    elif symbol.is_undefined:
                        index = C.VER_NDX_GLOBAL
                    else:
                        index = C.VER_NDX_BASE_DEFINED
                    versym += _s.pack("<H", index)
                emit(".gnu.version", bytes(versym))
                verdef = _s.pack(
                    "<HHHHIII",
                    1,                      # vd_version
                    0,                      # vd_flags
                    C.VER_NDX_BASE_DEFINED,  # vd_ndx
                    1,                      # vd_cnt
                    elf_hash(self.version),  # vd_hash
                    C.VERDEF_SIZE,          # vd_aux
                    0,                      # vd_next
                ) + _s.pack("<II", dynstr.add(self.version), 0)
                emit(".gnu.version_d", verdef)
            emit(".rela.plt", relas)
            emit(".plt", bytes(plt))
        emit(".text", bytes(text))
        emit(".rodata", bytes(self._rodata))
        if not is_static:
            emit(".got.plt", got)
            emit(".dynamic", dynamic)
        else:
            emit(".symtab", dynsym_blob)
            emit(".strtab", dynstr_blob)
        image[shstrtab_offset:shstrtab_offset + len(shstrtab_blob)] = (
            shstrtab_blob)
        pos = shoff
        for section in sections:
            image[pos:pos + C.SHDR_SIZE] = section.pack()
            pos += C.SHDR_SIZE
        return bytes(image)
