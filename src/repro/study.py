"""High-level facade: run the whole study and regenerate every table
and figure.

``Study`` ties the layers together — ecosystem synthesis, the static
analysis pipeline, the metrics — and exposes one method per experiment
in the paper's evaluation.  Each method returns structured data plus a
``rendered`` text block shaped like the paper's table or figure.

Building the ecosystem and analyzing every binary takes a few seconds;
``Study.default()`` memoizes one instance per configuration for reuse
across examples, tests, and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from .analysis import AnalysisDatabase, AnalysisPipeline, AnalysisResult
from .analysis.footprint import Footprint
from .dataset import Dataset, footprints_fingerprint
from .compat import (
    FREEBSD_EMU,
    L4LINUX,
    UML,
    evaluate_all_variants,
    evaluate_system,
    graphene_model,
    graphene_plus_sched,
)
from .libc import runtime as libc_runtime
from .libc import symbols as libc_symbols
from .metrics import (
    band_counts,
    completeness_curve,
    importance_table,
    ranked,
    stages,
    unweighted_importance_table,
)
from .metrics.ranking import CurvePoint, Stage
from .packages.popcon import PopularityContest
from .packages.repository import Repository
from .reports.text import (
    format_percent,
    render_dataset_stats,
    render_key_points,
    render_series,
    render_table,
)
from .security import (
    adoption_summary,
    all_variant_tables,
    generate_policy,
    relocation_layout,
    strip_report,
)
from .syscalls import fcntl_ops, ioctl, prctl_ops
from .syscalls.table import ALL_NAMES, RETIRED_NAMES
from .synth import Ecosystem, EcosystemConfig, build_ecosystem
from .synth import profiles as synth_profiles


@dataclass
class ExperimentOutput:
    """Structured result plus its paper-shaped text rendering."""

    experiment: str
    data: object
    rendered: str

    def __str__(self) -> str:
        return self.rendered


_STUDY_CACHE: Dict[Tuple, "Study"] = {}


class Study:
    """One full run of the reproduction."""

    def __init__(self, config: Optional[EcosystemConfig] = None,
                 jobs: int = 1, backend: Optional[str] = None,
                 cache_dir: Optional[str] = None,
                 strict: bool = False,
                 max_failures: Optional[int] = None) -> None:
        """``jobs``/``backend``/``cache_dir`` configure the analysis
        engine: worker count, executor backend (defaults to ``process``
        when ``jobs > 1``), and an optional persistent record cache so
        warm re-runs skip unchanged binaries.  ``strict`` restores
        fail-fast per-binary analysis (the first failure propagates);
        ``max_failures`` bounds the quarantine before the run aborts."""
        from .engine import AnalysisEngine, EngineConfig
        self.config = config or EcosystemConfig()
        if backend is None:
            backend = "process" if jobs > 1 else "serial"
        self.engine = AnalysisEngine(EngineConfig(
            jobs=jobs, backend=backend, cache_dir=cache_dir,
            strict=strict, max_failures=max_failures))
        self.ecosystem: Ecosystem = build_ecosystem(self.config)
        self.result: AnalysisResult = AnalysisPipeline(
            self.ecosystem.repository,
            self.ecosystem.interpreters,
            engine=self.engine).run()
        self._tables: Dict[Tuple[str, str], Dict[str, float]] = {}
        self._curve: Optional[List[CurvePoint]] = None
        self._dataset: Optional[Dataset] = None

    # --- construction helpers --------------------------------------------

    @classmethod
    def default(cls, config: Optional[EcosystemConfig] = None,
                jobs: int = 1, backend: Optional[str] = None,
                cache_dir: Optional[str] = None,
                strict: bool = False,
                max_failures: Optional[int] = None) -> "Study":
        """Memoized instance (ecosystem + analysis are deterministic)."""
        import dataclasses
        cfg = config or EcosystemConfig()
        key = (dataclasses.astuple(cfg), jobs, backend, cache_dir,
               strict, max_failures)
        if key not in _STUDY_CACHE:
            _STUDY_CACHE[key] = cls(cfg, jobs=jobs, backend=backend,
                                    cache_dir=cache_dir, strict=strict,
                                    max_failures=max_failures)
        return _STUDY_CACHE[key]

    @classmethod
    def small(cls) -> "Study":
        """A reduced ecosystem for fast tests."""
        return cls.default(EcosystemConfig(
            n_filler_packages=120, n_driver_packages=20,
            n_script_packages=150))

    # --- shared accessors ----------------------------------------------

    @property
    def repository(self) -> Repository:
        return self.ecosystem.repository

    @property
    def popcon(self) -> PopularityContest:
        return self.ecosystem.popcon

    @property
    def dataset(self) -> Dataset:
        """The interned, bitset-backed substrate every experiment
        shares.

        Built once per study from the pipeline's footprints; when the
        engine has a persistent cache the interner and bitsets are
        loaded from (or stored beside) the per-binary records, so a
        warm run skips re-interning the whole corpus.
        """
        if self._dataset is None:
            footprints = self.result.package_footprints
            cache = getattr(self.engine, "cache", None)
            dataset = None
            fingerprint = None
            if cache is not None and hasattr(cache, "get_dataset"):
                fingerprint = footprints_fingerprint(footprints)
                dataset = cache.get_dataset(
                    fingerprint, self.popcon, self.repository)
            if dataset is None:
                dataset = Dataset(footprints, popcon=self.popcon,
                                  repository=self.repository)
                if fingerprint is not None:
                    cache.put_dataset(fingerprint, dataset)
            self._dataset = dataset
        return self._dataset

    @property
    def footprints(self) -> Mapping[str, Footprint]:
        """Per-package footprints, as the shared :class:`Dataset`
        (a read-only mapping view over the same data)."""
        return self.dataset

    def importance(self, dimension: str = "syscall",
                   universe: Sequence[str] = ()) -> Dict[str, float]:
        key = ("imp", dimension)
        if key not in self._tables:
            self._tables[key] = importance_table(
                self.footprints, self.popcon, dimension,
                universe=universe)
        table = self._tables[key]
        for api in universe:
            table.setdefault(api, 0.0)
        return table

    def usage(self, dimension: str = "syscall",
              universe: Sequence[str] = ()) -> Dict[str, float]:
        key = ("usage", dimension)
        if key not in self._tables:
            self._tables[key] = unweighted_importance_table(
                self.footprints, dimension, universe=universe)
        table = self._tables[key]
        for api in universe:
            table.setdefault(api, 0.0)
        return table

    def syscall_ranking(self) -> List[str]:
        importance = self.importance("syscall", universe=ALL_NAMES)
        usage = self.usage("syscall", universe=ALL_NAMES)
        return sorted(importance,
                      key=lambda api: (-importance[api],
                                       -usage.get(api, 0.0), api))

    def curve(self) -> List[CurvePoint]:
        if self._curve is None:
            self._curve = completeness_curve(
                self.footprints, self.popcon, self.repository)
        return self._curve

    # ------------------------------------------------------------------
    # Figure 1 — executable type mix
    # ------------------------------------------------------------------

    def fig1_binary_types(self) -> ExperimentOutput:
        stats = self.result.type_stats
        total = stats.total_executables
        rows = [("ELF binary", stats.elf_binaries,
                 format_percent(stats.fraction(stats.elf_binaries)))]
        for interp, count in sorted(
                stats.scripts_by_interpreter.items(),
                key=lambda item: -item[1]):
            rows.append((f"script ({interp})", count,
                         format_percent(stats.fraction(count))))
        elf_total = stats.elf_binaries or 1
        detail = [
            ("shared libraries", stats.elf_shared_libraries,
             format_percent(stats.elf_shared_libraries / elf_total)),
            ("dynamic executables", stats.elf_dynamic_executables,
             format_percent(stats.elf_dynamic_executables / elf_total)),
            ("static binaries", stats.elf_static,
             format_percent(stats.elf_static / elf_total)),
        ]
        rendered = render_table(
            ("kind", "count", "share"), rows,
            title=f"Figure 1 — executable types ({total} executables)")
        rendered += "\n\n" + render_table(
            ("ELF breakdown", "count", "share"), detail)
        return ExperimentOutput("fig1", {"rows": rows, "elf": detail},
                                rendered)

    # ------------------------------------------------------------------
    # Figure 2 / Tables 1-3 — syscall importance
    # ------------------------------------------------------------------

    def fig2_syscall_importance(self) -> ExperimentOutput:
        importance = self.importance("syscall", universe=ALL_NAMES)
        series = [value for _, value in ranked(importance)]
        bands = band_counts(importance)
        at_least_10 = sum(1 for v in importance.values() if v >= 0.10)
        nonzero = sum(1 for v in importance.values() if v > 0.0)
        points = [
            ("defined syscalls", len(importance)),
            ("importance ~100% (indispensable)", bands["indispensable"]),
            ("importance >= 10%", at_least_10),
            ("importance > 0", nonzero),
            ("never used", bands["unused"]),
        ]
        rendered = render_series(
            series, title="Figure 2 — syscall API importance "
            "(inverted CDF)", y_label="importance",
            x_label="N-most important syscalls")
        rendered += "\n" + render_key_points(points)
        return ExperimentOutput(
            "fig2", {"series": series, "bands": bands,
                     "at_least_10": at_least_10, "nonzero": nonzero},
            rendered)

    def tab1_library_only_syscalls(self) -> ExperimentOutput:
        """Syscalls whose only raw call sites live in libraries.

        Nearly every wrapped syscall technically qualifies; the table
        keeps the informative cases the paper shows — wrappers that few
        packages import (so the library is genuinely the gatekeeper),
        not the universal file/socket surface.
        """
        importance = self.importance("syscall", universe=ALL_NAMES)
        usage = self.usage("syscall", universe=ALL_NAMES)
        direct = self.result.direct_syscalls_by_binary
        libraries = self.result.library_binaries
        exe_direct: Dict[str, set] = {}
        lib_direct: Dict[str, set] = {}
        for key, names in direct.items():
            bucket = lib_direct if key in libraries else exe_direct
            for name in names:
                bucket.setdefault(name, set()).add(key)
        rows = []
        for name in sorted(lib_direct):
            if name in exe_direct:
                continue
            value = importance.get(name, 0.0)
            if value < 0.10:
                continue
            # The paper's table excludes the universal startup path and
            # keeps calls bound to one or two particular libraries.
            if name in libc_runtime.STARTUP_SYSCALLS:
                continue
            if usage.get(name, 0.0) >= 0.12:
                continue  # widely-imported wrapper: not library-bound
            providers = sorted({key[1].rsplit("/", 1)[-1]
                                for key in lib_direct[name]})
            if len(providers) > 2:
                continue
            rows.append((name, format_percent(value),
                         ", ".join(providers[:3])))
        rows.sort(key=lambda row: -float(row[1].rstrip("%")))
        # Display: every partial-importance row, and a short sample of
        # the 100% head (the paper prints the notable four).
        headline = ("clock_settime", "iopl", "ioperm", "signalfd4")
        full = [row for row in rows if row[1] == "100.0%"]
        partial = [row for row in rows if row[1] != "100.0%"]
        shown = ([row for row in full if row[0] in headline]
                 + [row for row in full if row[0] not in headline][:4]
                 + partial)
        rendered = render_table(
            ("syscall", "importance", "libraries"), shown,
            title=f"Table 1 — syscalls only used directly by libraries"
                  f" ({len(rows)} total; sample shown)")
        return ExperimentOutput("tab1", rows, rendered)

    def tab2_single_package_syscalls(self) -> ExperimentOutput:
        importance = self.importance("syscall", universe=ALL_NAMES)
        from .metrics import dependents_index
        index = dependents_index(self.footprints, "syscall")
        rows = []
        for name, users in sorted(index.items()):
            if name in RETIRED_NAMES:
                continue
            if 1 <= len(users) <= 2 and importance.get(name, 0) < 0.10:
                rows.append((name, format_percent(importance[name]),
                             ", ".join(sorted(users))))
        rendered = render_table(
            ("syscall", "importance", "packages"), rows,
            title="Table 2 — syscalls dominated by one or two packages")
        return ExperimentOutput("tab2", rows, rendered)

    def tab3_unused_syscalls(self) -> ExperimentOutput:
        importance = self.importance("syscall", universe=ALL_NAMES)
        unused = sorted(name for name, value in importance.items()
                        if value == 0.0)
        rows = [(name,
                 synth_profiles.UNUSED_SYSCALL_REASONS.get(
                     name, "No usage found in the archive."))
                for name in unused]
        rendered = render_table(
            ("syscall", "reason for disuse"), rows,
            title=f"Table 3 — unused system calls ({len(rows)})")
        return ExperimentOutput("tab3", rows, rendered)

    # ------------------------------------------------------------------
    # Figure 3 / Table 4 — implementation path
    # ------------------------------------------------------------------

    def fig3_completeness_curve(self) -> ExperimentOutput:
        curve = self.curve()
        series = [point.completeness for point in curve]
        landmarks = []
        for target in (0.011, 0.10, 0.50, 0.90, 0.999):
            n = next((p.n_apis for p in curve
                      if p.completeness >= target), None)
            landmarks.append((f"weighted completeness >= "
                              f"{format_percent(target)}",
                              f"N = {n}"))
        rendered = render_series(
            series, title="Figure 3 — weighted completeness vs. N "
            "top-ranked syscalls", y_label="completeness",
            x_label="N most-important syscalls implemented")
        rendered += "\n" + render_key_points(landmarks)
        return ExperimentOutput(
            "fig3", {"curve": curve, "landmarks": landmarks}, rendered)

    def tab4_stages(self) -> ExperimentOutput:
        rows = []
        stage_list = stages(self.curve())
        for stage in stage_list:
            added = stage.end - stage.start + 1
            rows.append((
                f"{'I' * stage.number}" if stage.number <= 3
                else ["IV", "V"][stage.number - 4],
                ", ".join(stage.sample_apis[:6]),
                f"+{added} ({stage.end})",
                format_percent(stage.completeness, 2),
            ))
        rendered = render_table(
            ("stage", "sample syscalls", "# syscalls",
             "weighted completeness"), rows,
            title="Table 4 — implementation stages")
        return ExperimentOutput("tab4", stage_list, rendered)

    # ------------------------------------------------------------------
    # Figures 4-5 — vectored opcodes
    # ------------------------------------------------------------------

    def fig4_ioctl(self) -> ExperimentOutput:
        importance = self.importance(
            "ioctl", universe=[d.name for d in ioctl.IOCTLS])
        series = [v for _, v in ranked(importance)]
        full = sum(1 for v in importance.values() if v >= 0.995)
        over_1pct = sum(1 for v in importance.values() if v >= 0.01)
        used = sum(1 for v in importance.values() if v > 0)
        points = [
            ("defined ioctl codes", len(importance)),
            ("importance ~100%", full),
            ("importance >= 1%", over_1pct),
            ("used by at least one binary", used),
        ]
        rendered = render_series(
            series[:200], title="Figure 4 — ioctl opcode importance "
            "(top 200 shown)", y_label="importance")
        rendered += "\n" + render_key_points(points)
        return ExperimentOutput(
            "fig4", {"series": series, "full": full,
                     "over_1pct": over_1pct, "used": used}, rendered)

    def fig5_fcntl_prctl(self) -> ExperimentOutput:
        fcntl_importance = self.importance(
            "fcntl", universe=[d.name for d in fcntl_ops.FCNTLS])
        prctl_importance = self.importance(
            "prctl", universe=[d.name for d in prctl_ops.PRCTLS])
        data = {}
        blocks = []
        for label, table in (("fcntl", fcntl_importance),
                             ("prctl", prctl_importance)):
            series = [v for _, v in ranked(table)]
            full = sum(1 for v in table.values() if v >= 0.995)
            over_20 = sum(1 for v in table.values() if v >= 0.20)
            data[label] = {"series": series, "full": full,
                           "over_20": over_20, "defined": len(table)}
            blocks.append(render_series(
                series, title=f"Figure 5 — {label} opcode importance"))
            blocks.append(render_key_points([
                (f"defined {label} codes", len(table)),
                ("importance ~100%", full),
                ("importance >= 20%", over_20),
            ]))
        return ExperimentOutput("fig5", data, "\n".join(blocks))

    # ------------------------------------------------------------------
    # Figure 6 — pseudo-files
    # ------------------------------------------------------------------

    def fig6_pseudo_files(self) -> ExperimentOutput:
        importance = self.importance("pseudofile")
        top = ranked(importance)[:25]
        rows = [(path, format_percent(value)) for path, value in top]
        series = [v for _, v in ranked(importance)]
        rendered = render_series(
            series, title="Figure 6 — pseudo-file API importance")
        rendered += "\n" + render_table(
            ("pseudo-file", "importance"), rows)
        return ExperimentOutput(
            "fig6", {"series": series, "top": top}, rendered)

    # ------------------------------------------------------------------
    # Figure 7 / §3.5 — libc
    # ------------------------------------------------------------------

    def fig7_libc_importance(self) -> ExperimentOutput:
        universe = [s.name for s in libc_symbols.LIBC_SYMBOLS]
        importance = self.importance("libc", universe=universe)
        series = [v for _, v in ranked(importance)]
        n = len(importance)
        full = sum(1 for v in importance.values() if v >= 0.995)
        below_half = sum(1 for v in importance.values() if v < 0.50)
        below_1pct = sum(1 for v in importance.values() if v < 0.01)
        unused = sum(1 for v in importance.values() if v == 0.0)
        points = [
            ("exported function symbols", n),
            ("importance ~100%", f"{full} ({format_percent(full / n)})"),
            ("importance < 50%",
             f"{below_half} ({format_percent(below_half / n)})"),
            ("importance < 1%",
             f"{below_1pct} ({format_percent(below_1pct / n)})"),
            ("entirely unused", unused),
        ]
        rendered = render_series(
            series, title="Figure 7 — GNU libc API importance")
        rendered += "\n" + render_key_points(points)
        return ExperimentOutput(
            "fig7", {"series": series, "full": full,
                     "below_half": below_half, "below_1pct": below_1pct,
                     "unused": unused, "total": n}, rendered)

    def libc_strip_analysis(self, threshold: float = 0.90,
                            ) -> ExperimentOutput:
        from .synth.runtime_gen import generate_libc
        universe = [s.name for s in libc_symbols.LIBC_SYMBOLS]
        importance = self.importance("libc", universe=universe)
        report = strip_report(
            generate_libc(), importance, self.footprints, self.popcon,
            threshold=threshold)
        layout = relocation_layout(importance, threshold=threshold)
        points = [
            ("strip threshold", format_percent(threshold)),
            ("retained APIs",
             f"{report.retained_symbols} of {report.total_symbols}"),
            ("code size retained",
             format_percent(report.retained_fraction)),
            ("probability an app misses a function",
             format_percent(report.miss_probability)),
            ("relocation table",
             f"{layout.table_bytes} bytes, "
             f"{layout.total_entries} entries"),
            ("hot relocation pages (sorted)", layout.hot_pages),
            ("pages touched unsorted", layout.unsorted_pages),
        ]
        rendered = render_key_points(
            points, title="§3.5 — stripping low-importance libc APIs")
        return ExperimentOutput(
            "libc_strip", {"report": report, "layout": layout},
            rendered)

    def tab5_startup_syscalls(self) -> ExperimentOutput:
        """Startup syscalls recovered from the runtime binaries."""
        index = self.result.library_index
        rows = []
        by_library: Dict[str, List[str]] = {}
        for soname in ("ld-linux-x86-64.so.2", "libc.so.6",
                       "libpthread.so.0", "librt.so.1"):
            analysis = index.get(soname)
            if analysis is None:
                continue
            by_library[soname] = sorted(analysis.all_direct_syscalls())
        attribution: Dict[str, List[str]] = {}
        for soname, names in by_library.items():
            for name in names:
                if name in libc_runtime.STARTUP_SYSCALLS:
                    attribution.setdefault(name, []).append(soname)
        for name in sorted(attribution):
            rows.append((name, ", ".join(attribution[name])))
        rendered = render_table(
            ("syscall", "issuing libraries"), rows,
            title="Table 5 — ubiquitous syscalls from the libc family")
        return ExperimentOutput("tab5", attribution, rendered)

    # ------------------------------------------------------------------
    # Tables 6-7 — systems and libc variants
    # ------------------------------------------------------------------

    def tab6_linux_systems(self) -> ExperimentOutput:
        ranking = self.syscall_ranking()
        graphene = graphene_model(ranking)
        evaluations = [
            evaluate_system(system, self.footprints, self.popcon,
                            self.repository)
            for system in (UML, L4LINUX, FREEBSD_EMU, graphene,
                           graphene_plus_sched(graphene))
        ]
        rows = [(ev.system, ev.syscall_count,
                 ", ".join(ev.suggested_apis[:4]),
                 format_percent(ev.weighted_completeness, 2))
                for ev in evaluations]
        rendered = render_table(
            ("system", "#", "suggested APIs to add", "W.Comp."), rows,
            title="Table 6 — weighted completeness of Linux systems")
        return ExperimentOutput("tab6", evaluations, rendered)

    def tab7_libc_variants(self) -> ExperimentOutput:
        evaluations = evaluate_all_variants(
            self.footprints, self.popcon, self.repository)
        rows = [(ev.variant, ev.export_count,
                 ", ".join(ev.sample_missing) or "None",
                 format_percent(ev.raw_completeness, 2),
                 format_percent(ev.normalized_completeness, 2))
                for ev in evaluations]
        rendered = render_table(
            ("libc variant", "#", "unsupported (samples)", "W.Comp.",
             "W.Comp. (normalized)"), rows,
            title="Table 7 — weighted completeness of libc variants")
        return ExperimentOutput("tab7", evaluations, rendered)

    # ------------------------------------------------------------------
    # Figure 8 / Tables 8-11 — unweighted importance
    # ------------------------------------------------------------------

    def fig8_unweighted(self) -> ExperimentOutput:
        usage = self.usage("syscall", universe=ALL_NAMES)
        series = [v for _, v in ranked(usage)]
        by_all = sum(1 for v in usage.values() if v >= 0.95)
        over_10 = sum(1 for v in usage.values() if v >= 0.10)
        under_10 = sum(1 for v in usage.values() if v < 0.10)
        points = [
            ("used by (essentially) all packages", by_all),
            ("used by >= 10% of packages", over_10),
            ("used by < 10% of packages", under_10),
        ]
        rendered = render_series(
            series, title="Figure 8 — unweighted syscall importance")
        rendered += "\n" + render_key_points(points)
        return ExperimentOutput(
            "fig8", {"series": series, "by_all": by_all,
                     "over_10": over_10}, rendered)

    def _variant_table(self, experiment: str, title: str,
                       group: str) -> ExperimentOutput:
        usage = self.usage("syscall", universe=ALL_NAMES)
        tables = all_variant_tables(usage)
        rows = [(row.left, format_percent(row.left_usage, 2),
                 row.right, format_percent(row.right_usage, 2))
                for row in tables[group]]
        rendered = render_table(
            ("API", "U.API Imp.", "variant API", "U.API Imp."), rows,
            title=title)
        return ExperimentOutput(experiment, tables[group], rendered)

    def tab8_secure_variants(self) -> ExperimentOutput:
        return self._variant_table(
            "tab8", "Table 8 — insecure vs. secure API variants",
            "secure")

    def tab9_old_new(self) -> ExperimentOutput:
        return self._variant_table(
            "tab9", "Table 9 — deprecated vs. preferred API variants",
            "old-new")

    def tab10_portability(self) -> ExperimentOutput:
        return self._variant_table(
            "tab10", "Table 10 — Linux-specific vs. portable variants",
            "portability")

    def tab11_power(self) -> ExperimentOutput:
        return self._variant_table(
            "tab11", "Table 11 — powerful vs. simple variants",
            "power")

    def adoption(self) -> ExperimentOutput:
        usage = self.usage("syscall", universe=ALL_NAMES)
        summary = adoption_summary(usage)
        points = [
            ("race-prone directory API usage",
             format_percent(summary.race_prone_directory_usage, 2)),
            ("atomic *at variant usage",
             format_percent(summary.atomic_variant_usage, 2)),
            ("deprecated APIs still above 10% usage",
             ", ".join(summary.deprecated_with_users)),
            ("portable variant preferred",
             f"{summary.portable_preferred_count} of "
             f"{summary.portable_preferred_count + summary.linux_specific_preferred_count} pairs"),
        ]
        rendered = render_key_points(
            points, title="§5 — adoption summary")
        return ExperimentOutput("adoption", summary, rendered)

    # ------------------------------------------------------------------
    # Table 12 / §6 — framework statistics and applications
    # ------------------------------------------------------------------

    def tab12_framework_stats(self) -> ExperimentOutput:
        database = AnalysisDatabase()
        # Reusing the study's engine makes this second pipeline pass a
        # pure cache replay: no binary is disassembled twice.
        AnalysisPipeline(self.repository,
                         self.ecosystem.interpreters,
                         engine=self.engine).run(database)
        for package in self.repository:
            database.set_popcon(
                package.name, self.popcon.installations(package.name))
        counts = database.row_counts()
        distinct, unique = self.result.syscall_signature_stats()
        points = [
            ("packages analyzed", len(self.repository)),
            ("binaries analyzed", self.result.binaries_analyzed),
            ("binaries with raw syscall sites",
             self.result.binaries_with_direct_syscalls),
            ("unresolved call sites (§2.4)",
             self.result.unresolved_sites),
            ("distinct syscall footprints", distinct),
            ("packages with a unique footprint", unique),
            ("database rows", database.total_rows()),
        ]
        rendered = render_key_points(
            points, title="Table 12 / §6 — framework statistics")
        rendered += "\n" + render_table(
            ("table", "rows"), sorted(counts.items()))
        database.close()
        return ExperimentOutput(
            "tab12", {"rows": counts, "distinct": distinct,
                      "unique": unique}, rendered)

    def engine_report(self) -> ExperimentOutput:
        """Instrumentation of the analysis run (stage times, cache)."""
        stats = self.result.engine_stats
        return ExperimentOutput("engine", stats, stats.render())

    def dataset_report(self) -> ExperimentOutput:
        """The interned substrate behind every metric: per-dimension
        universe sizes, non-empty package counts, and bindings."""
        stats = self.dataset.stats()
        return ExperimentOutput(
            "dataset", stats, render_dataset_stats(stats))

    def dep_semantics_report(self, dimension: str = "syscall",
                             ) -> ExperimentOutput:
        """AND-only vs full AND-OR dependency-semantics ablation.

        Runs the Figure-3 completeness curve twice over the same
        interned footprints — once against the real repository and
        once against its :meth:`repro.packages.Repository.and_only_view`
        degradation — and reports the signed completeness gaps.  On a
        corpus without alternatives or virtual packages every gap is
        exactly zero.
        """
        from .metrics import dep_semantics_ablation
        report = dep_semantics_ablation(self.dataset,
                                        dimension=dimension)
        points = [
            ("dimension", report["dimension"]),
            ("packages", report["n_packages"]),
            ("virtual packages",
             f"{report['n_virtual_packages']} "
             f"({report['n_provider_edges']} provider edges)"),
            ("alternative groups", report["n_alternative_groups"]),
            ("final completeness (full)",
             format_percent(report["full"]["final_completeness"])),
            ("final completeness (AND-only)",
             format_percent(report["and_only"]["final_completeness"])),
            ("final gap", f"{report['final_gap']:+.4%}"),
            ("largest gap",
             f"{report['max_gap']:+.4%} at rank "
             f"{report['max_gap_rank']}"),
            ("mean |gap|", f"{report['mean_abs_gap']:.4%}"),
            ("ranks diverging",
             f"{report['n_ranks_diverging']} / {report['n_apis']}"),
        ]
        rendered = render_key_points(
            points, title="dependency-semantics ablation — AND-only "
                          "vs AND-OR closure")
        return ExperimentOutput("depsem", report, rendered)

    def export_dataset(self, path: str, format: str = "json") -> int:
        """Write the interned dataset snapshot; returns the byte
        count written.  ``format`` is ``"json"`` (portable codec) or
        ``"binary"`` (mmap-able ``.rsnap``, :mod:`repro.store`)."""
        if format == "binary":
            from .store import write_snapshot
            return write_snapshot(path, self.dataset)
        if format != "json":
            raise ValueError(f"unknown export format: {format!r}")
        from .dataset import dataset_to_json
        text = dataset_to_json(self.dataset)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return len(text)

    def trace_report(self, top: int = 10) -> ExperimentOutput:
        """Span-level view of the run: stage breakdown, slowest
        binaries (including quarantined ones), from the engine's
        tracer."""
        from .obs import render_trace_report
        spans = self.result.engine_stats.tracer.finished()
        return ExperimentOutput(
            "trace", spans, render_trace_report(spans, top=top))

    def failure_report(self) -> ExperimentOutput:
        """The quarantine: every binary whose analysis failed.

        One row per quarantined binary — package, artifact, error
        class, stage, and the captured message — so a bulk run over an
        uncurated corpus documents exactly what it could not analyze.
        """
        from .reports.text import render_table
        failures = self.result.failures
        rows = [
            (f.package, f.artifact, f.error_class, f.stage,
             f.message if len(f.message) <= 48
             else f.message[:45] + "...")
            for f in failures
        ]
        title = (f"quarantined binaries ({len(failures)} of "
                 f"{self.result.engine_stats.binaries_total} submitted)")
        if not rows:
            rendered = (title + "\n  (none — every submitted binary "
                        "analyzed cleanly)")
        else:
            rendered = render_table(
                ("package", "artifact", "class", "stage", "message"),
                rows, title=title)
        return ExperimentOutput("failures", failures, rendered)

    def signature_index(self):
        """Footprint-signature index over the measured archive (§6)."""
        from .analysis.signatures import SignatureIndex
        return SignatureIndex(self.footprints)

    def trace_package(self, package: str,
                      executable: Optional[str] = None):
        """Dynamically execute one of a package's binaries (§2.3).

        Returns the :class:`repro.analysis.dynamic.Trace` of syscalls
        the binary actually issues when run under the interpreter.
        """
        from .analysis.binary import BinaryAnalysis
        from .analysis.dynamic import trace_executable
        pkg = self.repository.get(package)
        candidates = [a for a in pkg.executables() if a.is_elf]
        if executable is not None:
            candidates = [a for a in candidates
                          if a.name == executable]
        if not candidates:
            raise ValueError(f"{package!r} has no ELF executable")
        analysis = BinaryAnalysis.from_bytes(candidates[0].data)
        return trace_executable(analysis, self.result.library_index)

    def attack_surface(self) -> ExperimentOutput:
        """§6: archive-wide seccomp attack-surface statistics."""
        from .security import attack_surface_report
        from .syscalls.table import SYSCALL_COUNT
        report = attack_surface_report(self.footprints)
        points = [
            ("packages with policies", report["packages"]),
            ("mean whitelist size",
             f"{report['mean_whitelist']:.1f} of {SYSCALL_COUNT}"),
            ("median whitelist size", report["median_whitelist"]),
            ("widest whitelist", report["max_whitelist"]),
            ("mean reachable fraction",
             format_percent(report["mean_reachable_fraction"])),
        ]
        rendered = render_key_points(
            points, title="§6 — seccomp attack-surface audit")
        return ExperimentOutput("surface", report, rendered)

    def libc_decomposition(self) -> ExperimentOutput:
        """§3.5: split libc into co-usage sub-libraries."""
        from .security.libc_cluster import (
            decompose_libc,
            evaluate_decomposition,
        )
        from .security.libc_strip import function_sizes
        from .synth.runtime_gen import generate_libc
        sizes = function_sizes(generate_libc())
        subs = decompose_libc(self.footprints, sizes)
        report = evaluate_decomposition(subs, self.footprints)
        rows = [(f"sub-library {lib.index}", len(lib.symbols),
                 f"{lib.code_bytes} B") for lib in subs]
        rendered = render_table(
            ("sub-library", "symbols", "code"), rows,
            title="§3.5 — libc decomposition by co-usage")
        rendered += "\n" + render_key_points([
            ("mean sub-libraries mapped",
             f"{report.mean_libraries_loaded:.1f}"),
            ("code mapped per process",
             format_percent(report.loaded_fraction)),
        ])
        return ExperimentOutput(
            "decomposition", {"sub_libraries": subs,
                              "report": report}, rendered)

    def seccomp_policy(self, package: str) -> ExperimentOutput:
        footprint = self.result.footprint_of(package)
        policy = generate_policy(footprint)
        rendered = (f"seccomp policy for {package!r} "
                    f"({len(policy.allowed_syscalls)} syscalls "
                    f"whitelisted)\n" + policy.render())
        return ExperimentOutput("seccomp", policy, rendered)

    # ------------------------------------------------------------------

    def all_experiments(self) -> List[ExperimentOutput]:
        """Every table and figure, in paper order."""
        return [
            self.fig1_binary_types(),
            self.fig2_syscall_importance(),
            self.tab1_library_only_syscalls(),
            self.tab2_single_package_syscalls(),
            self.tab3_unused_syscalls(),
            self.fig3_completeness_curve(),
            self.tab4_stages(),
            self.fig4_ioctl(),
            self.fig5_fcntl_prctl(),
            self.fig6_pseudo_files(),
            self.fig7_libc_importance(),
            self.libc_strip_analysis(),
            self.tab5_startup_syscalls(),
            self.tab6_linux_systems(),
            self.tab7_libc_variants(),
            self.fig8_unweighted(),
            self.tab8_secure_variants(),
            self.tab9_old_new(),
            self.tab10_portability(),
            self.tab11_power(),
            self.adoption(),
            self.tab12_framework_stats(),
            self.attack_surface(),
            self.libc_decomposition(),
            self.failure_report(),
            self.dataset_report(),
            self.dep_semantics_report(),
        ]
