"""Cross-binary footprint resolution (§7).

A binary's API footprint includes system calls it can reach *through*
the shared libraries it links: "for each library function that calls
another library call, recursively trace the call graph and aggregate
the results".  This module implements that recursion over a library
index keyed by SONAME, with memoization and cycle-cutting.

Imported symbols that resolve into libc are additionally recorded in
the ``libc_symbols`` footprint dimension — that is the data behind the
libc study (§3.5) and the libc-variant comparison (§4.2).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .binary import BinaryAnalysis, RootEffects
from .footprint import Footprint

LIBC_SONAME = "libc.so.6"
LD_SO_SONAME = "ld-linux-x86-64.so.2"
LD_SO_ENTRY_EXPORT = "_dl_start"


def _interpreter_of(analysis) -> Optional[str]:
    """PT_INTERP path of an analysis-like object.

    Works for both :class:`BinaryAnalysis` (which exposes the parsed
    ELF) and :class:`repro.engine.record.BinaryRecord` (which carries
    the interpreter as a plain attribute).
    """
    elf = getattr(analysis, "elf", None)
    if elf is not None:
        return elf.interpreter()
    return getattr(analysis, "interpreter", None)


class LibraryIndex:
    """SONAME → analyzed shared library."""

    def __init__(self) -> None:
        self._by_soname: Dict[str, BinaryAnalysis] = {}
        self._export_index: Dict[str, List[str]] = {}

    def add(self, analysis: BinaryAnalysis) -> None:
        if not analysis.soname:
            raise ValueError(f"{analysis.name}: shared library lacks SONAME")
        self._by_soname[analysis.soname] = analysis
        for name in analysis.exported:
            self._export_index.setdefault(name, []).append(analysis.soname)

    def get(self, soname: str) -> Optional[BinaryAnalysis]:
        return self._by_soname.get(soname)

    def __contains__(self, soname: str) -> bool:
        return soname in self._by_soname

    def sonames(self) -> List[str]:
        return list(self._by_soname)

    def providers_of(self, symbol: str) -> List[str]:
        return self._export_index.get(symbol, [])


class FootprintResolver:
    """Resolves full footprints across library boundaries."""

    def __init__(self, index: LibraryIndex,
                 include_interpreter_runtime: bool = False) -> None:
        """``include_interpreter_runtime`` folds the dynamic linker's
        startup footprint into every PT_INTERP executable.  The paper's
        per-package footprints attribute ld.so's own system calls to
        the loader's package, not to every application (compare Table 5
        with Table 8's ``access`` at 74%), so this defaults to off."""
        self.index = index
        self.include_interpreter_runtime = include_interpreter_runtime
        # (soname, export) -> resolved footprint
        self._memo: Dict[Tuple[str, str], Footprint] = {}
        self._in_progress: Set[Tuple[str, str]] = set()

    # --- public API --------------------------------------------------

    def resolve_executable(self, analysis: BinaryAnalysis) -> Footprint:
        """Full footprint of an executable from its entry point."""
        entry = analysis.entry_root()
        footprint = Footprint.build(
            pseudo_files=analysis.pseudo_files)
        # Optionally fold in the dynamic linker's startup syscalls for
        # PT_INTERP executables (see __init__).
        if (self.include_interpreter_runtime
                and _interpreter_of(analysis) is not None):
            footprint = footprint | self.resolve_export(
                LD_SO_SONAME, LD_SO_ENTRY_EXPORT)
        if entry is None:
            # Static data-only or unanalyzable: imports still resolve.
            for symbol in analysis.imported:
                footprint = footprint | self._resolve_import(
                    analysis, symbol)
            return footprint
        effects = analysis.effects_from(entry)
        footprint = footprint | self._effects_to_footprint(effects)
        for symbol in effects.called_imports:
            footprint = footprint | self._resolve_import(analysis, symbol)
        return footprint

    def resolve_export(self, soname: str, symbol: str) -> Footprint:
        """Footprint of calling ``symbol`` exported by ``soname``."""
        key = (soname, symbol)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress:
            return Footprint.EMPTY  # cycle: contributes nothing new
        library = self.index.get(soname)
        if library is None:
            return Footprint.EMPTY
        root = library.export_root(symbol)
        if root is None:
            return Footprint.EMPTY
        self._in_progress.add(key)
        try:
            effects = library.effects_from(root)
            footprint = self._effects_to_footprint(effects)
            for imported in effects.called_imports:
                footprint = footprint | self._resolve_import(
                    library, imported)
        finally:
            self._in_progress.discard(key)
        self._memo[key] = footprint
        return footprint

    # --- internals ------------------------------------------------------

    @staticmethod
    def _effects_to_footprint(effects: RootEffects) -> Footprint:
        return Footprint.build(
            syscalls=effects.syscalls,
            ioctls=effects.ioctls,
            fcntls=effects.fcntls,
            prctls=effects.prctls,
            unresolved_sites=effects.unresolved_sites,
        )

    def find_provider(self, analysis: BinaryAnalysis,
                      symbol: str) -> Optional[str]:
        """Locate the library providing ``symbol``.

        Search order mirrors the dynamic linker: the binary's DT_NEEDED
        list breadth-first through transitive dependencies.
        """
        seen: Set[str] = set()
        queue = list(analysis.needed)
        while queue:
            soname = queue.pop(0)
            if soname in seen:
                continue
            seen.add(soname)
            library = self.index.get(soname)
            if library is None:
                continue
            if symbol in library.exported:
                return soname
            queue.extend(library.needed)
        # Fall back to a global search (ld.so would fail here, but for
        # analysis purposes any provider is better than dropping data).
        providers = self.index.providers_of(symbol)
        return providers[0] if providers else None

    def _resolve_import(self, analysis: BinaryAnalysis,
                        symbol: str) -> Footprint:
        provider = self.find_provider(analysis, symbol)
        if provider is None:
            return Footprint.EMPTY
        footprint = self.resolve_export(provider, symbol)
        if provider == LIBC_SONAME:
            footprint = footprint | Footprint.build(libc_symbols=[symbol])
        return footprint
