"""Relational storage and recursive aggregation (§7, Table 12).

The original framework inserted all raw analysis data into PostgreSQL
and used recursive SQL queries to aggregate footprints across the
call graph.  This module mirrors that design on sqlite3 (stdlib):

* raw per-export local effects and resolved cross-library call edges
  are inserted as rows;
* a recursive common-table-expression computes, per executable, the
  transitive closure over library exports and unions their effects.

The in-memory resolver (:mod:`repro.analysis.resolver`) computes the
same result procedurally; tests assert both engines agree.
"""

from __future__ import annotations

import sqlite3
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from .footprint import Footprint

_SCHEMA = """
CREATE TABLE packages (
    name TEXT PRIMARY KEY,
    category TEXT NOT NULL DEFAULT 'misc'
);
CREATE TABLE package_dependencies (
    package TEXT NOT NULL,
    depends_on TEXT NOT NULL,
    PRIMARY KEY (package, depends_on)
);
CREATE TABLE binaries (
    id INTEGER PRIMARY KEY,
    package TEXT NOT NULL,
    name TEXT NOT NULL,
    kind TEXT NOT NULL,            -- elf-executable / shared-library / ...
    soname TEXT,
    interpreter TEXT               -- script interpreter, if a script
);
CREATE TABLE binary_needed (
    binary_id INTEGER NOT NULL,
    soname TEXT NOT NULL
);
-- Local (intra-binary) effects reachable from an executable entry point.
CREATE TABLE executable_effects (
    binary_id INTEGER NOT NULL,
    kind TEXT NOT NULL,            -- syscall / ioctl / fcntl / prctl /
                                   -- pseudofile / libcsym
    value TEXT NOT NULL
);
-- Resolved call edges from an executable into library exports.
CREATE TABLE executable_calls (
    binary_id INTEGER NOT NULL,
    callee_soname TEXT NOT NULL,
    callee_export TEXT NOT NULL
);
-- Local effects reachable from one library export.
CREATE TABLE export_effects (
    soname TEXT NOT NULL,
    export TEXT NOT NULL,
    kind TEXT NOT NULL,
    value TEXT NOT NULL
);
-- Resolved call edges between library exports.
CREATE TABLE export_calls (
    soname TEXT NOT NULL,
    export TEXT NOT NULL,
    callee_soname TEXT NOT NULL,
    callee_export TEXT NOT NULL
);
CREATE TABLE popcon (
    package TEXT PRIMARY KEY,
    installations INTEGER NOT NULL
);
CREATE INDEX idx_export_calls ON export_calls (soname, export);
CREATE INDEX idx_export_effects ON export_effects (soname, export);
CREATE INDEX idx_exec_calls ON executable_calls (binary_id);
CREATE INDEX idx_exec_effects ON executable_effects (binary_id);
"""

_FOOTPRINT_KINDS = ("syscall", "ioctl", "fcntl", "prctl",
                    "pseudofile", "libcsym")


class AnalysisDatabase:
    """sqlite3-backed footprint store with recursive aggregation."""

    def __init__(self, path: str = ":memory:") -> None:
        self.connection = sqlite3.connect(path)
        self.connection.executescript(_SCHEMA)
        self._next_binary_id = 1

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "AnalysisDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # --- inserts ------------------------------------------------------------

    def add_package(self, name: str, category: str = "misc",
                    depends: Iterable[str] = ()) -> None:
        cur = self.connection
        cur.execute("INSERT OR IGNORE INTO packages VALUES (?, ?)",
                    (name, category))
        cur.executemany(
            "INSERT OR IGNORE INTO package_dependencies VALUES (?, ?)",
            [(name, dep) for dep in depends])

    def add_binary(self, package: str, name: str, kind: str,
                   soname: Optional[str] = None,
                   interpreter: Optional[str] = None,
                   needed: Iterable[str] = ()) -> int:
        binary_id = self._next_binary_id
        self._next_binary_id += 1
        self.connection.execute(
            "INSERT INTO binaries VALUES (?, ?, ?, ?, ?, ?)",
            (binary_id, package, name, kind, soname, interpreter))
        self.connection.executemany(
            "INSERT INTO binary_needed VALUES (?, ?)",
            [(binary_id, s) for s in needed])
        return binary_id

    def add_executable_effects(self, binary_id: int,
                               footprint: Footprint) -> None:
        rows = _footprint_rows(footprint)
        self.connection.executemany(
            "INSERT INTO executable_effects VALUES (?, ?, ?)",
            [(binary_id, kind, value) for kind, value in rows])

    def add_executable_call(self, binary_id: int, soname: str,
                            export: str) -> None:
        self.connection.execute(
            "INSERT INTO executable_calls VALUES (?, ?, ?)",
            (binary_id, soname, export))

    def add_export_effects(self, soname: str, export: str,
                           footprint: Footprint) -> None:
        rows = _footprint_rows(footprint)
        self.connection.executemany(
            "INSERT INTO export_effects VALUES (?, ?, ?, ?)",
            [(soname, export, kind, value) for kind, value in rows])

    def add_export_call(self, soname: str, export: str,
                        callee_soname: str, callee_export: str) -> None:
        self.connection.execute(
            "INSERT INTO export_calls VALUES (?, ?, ?, ?)",
            (soname, export, callee_soname, callee_export))

    def set_popcon(self, package: str, installations: int) -> None:
        self.connection.execute(
            "INSERT OR REPLACE INTO popcon VALUES (?, ?)",
            (package, installations))

    # --- recursive aggregation ----------------------------------------

    def executable_footprint(self, binary_id: int) -> Footprint:
        """Aggregate an executable's footprint with a recursive CTE.

        This is the SQL twin of
        :meth:`repro.analysis.resolver.FootprintResolver.resolve_executable`.
        """
        query = """
        WITH RECURSIVE reached(soname, export) AS (
            SELECT callee_soname, callee_export
              FROM executable_calls WHERE binary_id = :bid
            UNION
            SELECT ec.callee_soname, ec.callee_export
              FROM export_calls AS ec
              JOIN reached AS r
                ON ec.soname = r.soname AND ec.export = r.export
        )
        SELECT kind, value FROM executable_effects
          WHERE binary_id = :bid
        UNION
        SELECT ee.kind, ee.value
          FROM export_effects AS ee
          JOIN reached AS r
            ON ee.soname = r.soname AND ee.export = r.export
        """
        rows = self.connection.execute(
            query, {"bid": binary_id}).fetchall()
        return _rows_to_footprint(rows)

    def export_footprint(self, soname: str, export: str) -> Footprint:
        query = """
        WITH RECURSIVE reached(soname, export) AS (
            SELECT :soname, :export
            UNION
            SELECT ec.callee_soname, ec.callee_export
              FROM export_calls AS ec
              JOIN reached AS r
                ON ec.soname = r.soname AND ec.export = r.export
        )
        SELECT ee.kind, ee.value
          FROM export_effects AS ee
          JOIN reached AS r
            ON ee.soname = r.soname AND ee.export = r.export
        """
        rows = self.connection.execute(
            query, {"soname": soname, "export": export}).fetchall()
        return _rows_to_footprint(rows)

    def package_footprint(self, package: str) -> Footprint:
        """Union of the package's executables' footprints."""
        rows = self.connection.execute(
            "SELECT id FROM binaries WHERE package = ? AND kind IN "
            "('elf-executable', 'elf-static')", (package,)).fetchall()
        footprint = Footprint.EMPTY
        for (binary_id,) in rows:
            footprint = footprint | self.executable_footprint(binary_id)
        return footprint

    # --- statistics (Table 12) ------------------------------------------

    def row_counts(self) -> Dict[str, int]:
        tables = ("packages", "package_dependencies", "binaries",
                  "binary_needed", "executable_effects",
                  "executable_calls", "export_effects", "export_calls",
                  "popcon")
        counts = {}
        for table in tables:
            (count,) = self.connection.execute(
                f"SELECT COUNT(*) FROM {table}").fetchone()
            counts[table] = count
        return counts

    def total_rows(self) -> int:
        return sum(self.row_counts().values())


def _footprint_rows(footprint: Footprint) -> List[Tuple[str, str]]:
    rows: List[Tuple[str, str]] = []
    rows += [("syscall", v) for v in footprint.syscalls]
    rows += [("ioctl", v) for v in footprint.ioctls]
    rows += [("fcntl", v) for v in footprint.fcntls]
    rows += [("prctl", v) for v in footprint.prctls]
    rows += [("pseudofile", v) for v in footprint.pseudo_files]
    rows += [("libcsym", v) for v in footprint.libc_symbols]
    return rows


def _rows_to_footprint(rows: Iterable[Tuple[str, str]]) -> Footprint:
    buckets: Dict[str, List[str]] = {kind: [] for kind in _FOOTPRINT_KINDS}
    for kind, value in rows:
        if kind in buckets:
            buckets[kind].append(value)
    return Footprint.build(
        syscalls=buckets["syscall"],
        ioctls=buckets["ioctl"],
        fcntls=buckets["fcntl"],
        prctls=buckets["prctl"],
        pseudo_files=buckets["pseudofile"],
        libc_symbols=buckets["libcsym"],
    )
