"""Dynamic tracing: concrete execution of synthetic binaries.

The paper spot-checks its static analysis by comparing against
``strace`` (§2.3): the static footprint must be a superset of any
dynamically observed syscall sequence.  This module provides the
equivalent for the synthetic archive — a concrete interpreter over the
generated machine code that "runs" an executable and records every
system call it issues, in order, with concrete arguments.

The interpreter models a process the way the dynamic linker sees it:

* every module (the executable and each shared library) keeps its own
  address space; values are plain 64-bit integers, code pointers are
  tagged with their module;
* a call that lands on a PLT stub performs symbol binding — the
  provider library is located through the DT_NEEDED closure and
  control transfers to its export, exactly like lazy binding;
* ``syscall`` / ``int 0x80`` record an event; ``exit`` /
  ``exit_group`` terminate the trace; a fuel limit guards against
  loops.

This is intentionally *not* a full CPU emulator: it executes the
instruction subset our generator emits, which suffices to produce
faithful "straces" for every binary in the archive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..syscalls import fcntl_ops, ioctl, prctl_ops
from ..syscalls.table import name_of
from ..x86 import registers as R
from ..x86.decoder import decode
from ..x86.instructions import InsnKind
from .binary import BinaryAnalysis
from .resolver import LibraryIndex


class TraceError(RuntimeError):
    """Raised when execution leaves the modelled subset."""


@dataclass(frozen=True)
class CodePointer:
    """A tagged code address: which module, which virtual address."""

    module: str
    address: int


Value = Union[int, CodePointer]


@dataclass(frozen=True)
class SyscallEvent:
    """One dynamically observed system call."""

    number: int
    name: Optional[str]
    args: Tuple[int, ...]        # rdi, rsi, rdx (concrete or 0)
    module: str                  # module containing the call site
    address: int

    def __str__(self) -> str:
        label = self.name or f"sys_{self.number}"
        rendered_args = ", ".join(str(a) for a in self.args)
        return f"{label}({rendered_args})"


@dataclass
class Trace:
    """The result of one dynamic run."""

    events: List[SyscallEvent] = field(default_factory=list)
    instructions_executed: int = 0
    exited: bool = False

    def syscall_names(self) -> List[str]:
        return [e.name for e in self.events if e.name]

    def syscall_set(self) -> frozenset:
        return frozenset(self.syscall_names())

    def opcode_events(self) -> Dict[str, List[str]]:
        """Vectored opcodes observed dynamically, by vector."""
        observed: Dict[str, List[str]] = {"ioctl": [], "fcntl": [],
                                          "prctl": []}
        for event in self.events:
            if event.name == "ioctl" and len(event.args) > 1:
                entry = ioctl.BY_CODE.get(event.args[1])
                observed["ioctl"].append(
                    entry.name if entry else hex(event.args[1]))
            elif event.name == "fcntl" and len(event.args) > 1:
                entry = fcntl_ops.BY_CODE.get(event.args[1])
                observed["fcntl"].append(
                    entry.name if entry else hex(event.args[1]))
            elif event.name == "prctl" and event.args:
                entry = prctl_ops.BY_CODE.get(event.args[0])
                observed["prctl"].append(
                    entry.name if entry else hex(event.args[0]))
        return observed

    def render(self, limit: int = 40) -> str:
        lines = [str(event) for event in self.events[:limit]]
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more")
        lines.append("+++ exited +++" if self.exited
                     else "+++ trace ended +++")
        return "\n".join(lines)


@dataclass
class _Module:
    """One mapped binary in the simulated process."""

    name: str
    analysis: BinaryAnalysis
    text: bytes = b""
    text_vaddr: int = 0
    plt_map: Dict[int, str] = field(default_factory=dict)

    @classmethod
    def of(cls, name: str, analysis: BinaryAnalysis) -> "_Module":
        return cls(name=name, analysis=analysis,
                   text=analysis.elf.text(),
                   text_vaddr=analysis.elf.text_vaddr(),
                   plt_map=analysis.elf.plt_map())

    def contains(self, vaddr: int) -> bool:
        return self.text_vaddr <= vaddr < self.text_vaddr + len(
            self.text)

    def fetch(self, vaddr: int):
        return decode(self.text, vaddr - self.text_vaddr, vaddr)


class DynamicTracer:
    """Executes one executable against a library index."""

    def __init__(self, executable: BinaryAnalysis,
                 index: LibraryIndex,
                 fuel: int = 200_000) -> None:
        self.index = index
        self.fuel = fuel
        self.modules: Dict[str, _Module] = {
            "<exe>": _Module.of("<exe>", executable)}
        self._providers: Dict[str, Tuple[str, int]] = {}

    # --- module / symbol management -----------------------------------

    def _module_for_library(self, soname: str) -> Optional[_Module]:
        if soname in self.modules:
            return self.modules[soname]
        analysis = self.index.get(soname)
        if analysis is None:
            return None
        module = _Module.of(soname, analysis)
        self.modules[soname] = module
        return module

    def _bind(self, from_module: _Module,
              symbol: str) -> Tuple[_Module, int]:
        """Lazy binding: locate the defining module and address."""
        cached = self._providers.get(symbol)
        if cached is not None:
            module = self.modules[cached[0]]
            return module, cached[1]
        # Breadth-first over the requesting module's DT_NEEDED closure,
        # then a global fallback — same policy as the static resolver.
        seen = set()
        queue = list(from_module.analysis.needed)
        while queue:
            soname = queue.pop(0)
            if soname in seen:
                continue
            seen.add(soname)
            module = self._module_for_library(soname)
            if module is None:
                continue
            root = module.analysis.export_root(symbol)
            if root is not None:
                self._providers[symbol] = (soname, root)
                return module, root
            queue.extend(module.analysis.needed)
        for soname in self.index.providers_of(symbol):
            module = self._module_for_library(soname)
            root = module.analysis.export_root(symbol)
            if root is not None:
                self._providers[symbol] = (soname, root)
                return module, root
        raise TraceError(f"unresolved symbol {symbol!r}")

    # --- execution ----------------------------------------------------

    def run(self, entry: Optional[int] = None) -> Trace:
        exe = self.modules["<exe>"]
        if entry is None:
            entry = exe.analysis.entry_root()
        if entry is None:
            raise TraceError("executable has no entry point")
        trace = Trace()
        regs: Dict[int, Value] = {reg: 0 for reg in range(16)}
        stack: List[Value] = []
        call_stack: List[Tuple[_Module, int]] = []
        zero_flag = False
        module = exe
        pc = entry
        fuel = self.fuel

        def as_int(value: Value) -> int:
            return value if isinstance(value, int) else value.address

        while fuel > 0:
            fuel -= 1
            if not module.contains(pc):
                raise TraceError(
                    f"pc {pc:#x} left {module.name}'s text")
            insn = module.fetch(pc)
            trace.instructions_executed += 1
            kind = insn.kind

            if kind == InsnKind.MOV_IMM_REG:
                regs[insn.reg] = insn.imm
            elif kind == InsnKind.XOR_REG_REG:
                regs[insn.reg] = 0
            elif kind == InsnKind.MOV_REG_REG:
                regs[insn.reg] = regs[insn.src_reg]
            elif kind == InsnKind.LEA_RIP:
                if module.contains(insn.target):
                    regs[insn.reg] = CodePointer(module.name,
                                                 insn.target)
                else:
                    regs[insn.reg] = insn.target  # data address
            elif kind == InsnKind.PUSH:
                stack.append(regs.get(insn.reg, 0)
                             if insn.reg is not None else 0)
            elif kind == InsnKind.POP:
                value = stack.pop() if stack else 0
                if insn.reg is not None:
                    regs[insn.reg] = value
            elif kind == InsnKind.CMP_IMM:
                left = regs.get(insn.reg if insn.reg is not None
                                else R.RAX, 0)
                zero_flag = as_int(left) == insn.imm
            elif kind == InsnKind.ADD_SUB_IMM:
                pass  # stack adjustment; the value stack models pushes
            elif kind == InsnKind.ALU_REG_REG:
                # Filler computation: opcode variants share one kind,
                # so approximate the result as a fresh scalar.
                regs[insn.reg] = as_int(regs.get(insn.reg, 0)) & 0xFF
            elif kind == InsnKind.TEST_REG_REG:
                zero_flag = (as_int(regs.get(insn.reg, 0))
                             & as_int(regs.get(insn.src_reg, 0))) == 0
            elif kind == InsnKind.MOVZX:
                regs[insn.reg] = as_int(
                    regs.get(insn.src_reg, 0)) & 0xFF
            elif kind == InsnKind.SHIFT_IMM:
                regs[insn.reg] = (as_int(regs.get(insn.reg, 0))
                                  << (insn.imm or 0)) & 0xFFFFFFFF
            elif kind == InsnKind.INC_DEC:
                regs[insn.reg] = as_int(regs.get(insn.reg, 0)) + 1
            elif kind in (InsnKind.SYSCALL, InsnKind.INT80,
                          InsnKind.SYSENTER):
                number = as_int(regs[R.RAX])
                event = SyscallEvent(
                    number=number,
                    name=name_of(number),
                    args=(as_int(regs[R.RDI]), as_int(regs[R.RSI]),
                          as_int(regs[R.RDX])),
                    module=module.name,
                    address=insn.address,
                )
                trace.events.append(event)
                if event.name in ("exit", "exit_group"):
                    trace.exited = True
                    return trace
                regs[R.RAX] = 0  # syscalls "succeed"
            elif kind == InsnKind.CALL_REL:
                target = insn.target
                symbol = module.plt_map.get(target)
                call_stack.append((module, insn.end))
                if symbol is not None:
                    module, pc = self._bind(module, symbol)
                    continue
                if not module.contains(target):
                    raise TraceError(
                        f"call into unmapped {target:#x}")
                pc = target
                continue
            elif kind == InsnKind.CALL_INDIRECT:
                # Our encoder only emits call *%reg for main dispatch.
                target = None
                for reg in (R.RDI, R.RAX, R.RDX):
                    if isinstance(regs.get(reg), CodePointer):
                        target = regs[reg]
                        break
                if target is None:
                    raise TraceError("indirect call with no code "
                                     "pointer in a register")
                call_stack.append((module, insn.end))
                module = self.modules[target.module]
                pc = target.address
                continue
            elif kind == InsnKind.JMP_REL:
                pc = insn.target
                continue
            elif kind == InsnKind.JCC_REL:
                taken = zero_flag if insn.raw[:2] in (b"\x0f\x84",) \
                    or insn.raw[:1] == b"\x74" else not zero_flag
                pc = insn.target if taken else insn.end
                continue
            elif kind == InsnKind.JMP_RIP_MEM:
                # A PLT stub reached by a tail jump.
                symbol = module.plt_map.get(insn.address)
                if symbol is None:
                    raise TraceError(
                        f"jmp through unknown slot at {insn.address:#x}")
                module, pc = self._bind(module, symbol)
                continue
            elif kind == InsnKind.RET:
                if not call_stack:
                    return trace  # returned from the entry point
                module, pc = call_stack.pop()
                continue
            elif kind == InsnKind.HLT:
                return trace
            elif kind in (InsnKind.NOP, InsnKind.LEAVE,
                          InsnKind.OTHER):
                pass
            else:
                raise TraceError(f"unhandled {kind} at {pc:#x}")
            pc = insn.end
        raise TraceError("fuel exhausted")


def trace_executable(executable: BinaryAnalysis,
                     index: LibraryIndex,
                     fuel: int = 200_000) -> Trace:
    """Convenience wrapper: run a binary, return its trace."""
    return DynamicTracer(executable, index, fuel=fuel).run()


def validate_over_approximation(static_syscalls: frozenset,
                                trace: Trace) -> List[str]:
    """§2.3's spot check: dynamic observations the static footprint
    missed (must be empty for a sound static analysis)."""
    return sorted(trace.syscall_set() - static_syscalls)
