"""Per-function effect extraction (§7).

Recovers, from a discovered function body, the facts the study keys on:

* direct system call sites (``syscall`` / ``int $0x80`` / ``sysenter``)
  and the syscall number loaded into ``eax`` before each site;
* vectored operation codes — the immediate loaded into the argument
  register at ``ioctl`` / ``fcntl`` / ``prctl`` call sites (both libc
  PLT calls and direct syscall instructions);
* ``syscall(3)``-style indirect invocation: a PLT call to libc's
  ``syscall`` with an immediate syscall number in ``edi``;
* unresolved sites, where the number is produced by arithmetic or
  arrives via a parameter — the paper reports 2,454 such sites (4%)
  and treats them as underestimation (§2.4).

The register model is deliberately simple, mirroring the paper's
assumption that syscall numbers and opcodes are "fixed scalars in the
binary": immediates propagate through ``mov`` chains, and any write we
cannot model (or a call's clobber set) invalidates a register.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..x86 import registers as R
from ..x86.instructions import Instruction, InsnKind
from .disassembler import FunctionBody

# Registers an external call may clobber (System V AMD64 caller-saved).
_CALLER_SAVED = (R.RAX, R.RCX, R.RDX, R.RSI, R.RDI,
                 R.R8, R.R9, R.R10, R.R11)

# Syscall numbers of the vectored calls (x86-64).
_SYS_IOCTL = 16
_SYS_FCNTL = 72
_SYS_PRCTL = 157

# libc wrapper name -> (vector kind, argument register holding opcode)
_VECTOR_WRAPPERS = {
    "ioctl": ("ioctl", R.RSI),
    "fcntl": ("fcntl", R.RSI),
    "fcntl64": ("fcntl", R.RSI),
    "prctl": ("prctl", R.RDI),
}


@dataclass
class FunctionEffects:
    """Extraction result for one function body."""

    address: int
    syscall_numbers: Set[int] = field(default_factory=set)
    # Subset of syscall_numbers observed at raw syscall instructions
    # (as opposed to immediates at libc syscall() wrapper calls);
    # Table 1's "only used directly by libraries" keys on this.
    raw_syscall_numbers: Set[int] = field(default_factory=set)
    ioctl_codes: Set[int] = field(default_factory=set)
    fcntl_codes: Set[int] = field(default_factory=set)
    prctl_codes: Set[int] = field(default_factory=set)
    plt_calls: Set[str] = field(default_factory=set)
    unresolved_syscall_sites: int = 0
    unresolved_vector_sites: int = 0

    def vector_codes(self, kind: str) -> Set[int]:
        return {"ioctl": self.ioctl_codes,
                "fcntl": self.fcntl_codes,
                "prctl": self.prctl_codes}[kind]


class _RegisterState:
    """Forward immediate propagation over one function."""

    def __init__(self) -> None:
        self._values: Dict[int, int] = {}

    def get(self, reg: int) -> Optional[int]:
        return self._values.get(reg)

    def apply(self, insn: Instruction) -> None:
        kind = insn.kind
        if kind == InsnKind.MOV_IMM_REG and insn.reg is not None:
            self._values[insn.reg] = insn.imm
        elif kind == InsnKind.XOR_REG_REG and insn.reg is not None:
            self._values[insn.reg] = 0
        elif kind == InsnKind.MOV_REG_REG:
            source = self._values.get(insn.src_reg)
            if source is None:
                self._values.pop(insn.reg, None)
            else:
                self._values[insn.reg] = source
        elif kind in (InsnKind.LEA_RIP, InsnKind.POP):
            if insn.reg is not None:
                self._values.pop(insn.reg, None)
        elif kind in (InsnKind.ADD_SUB_IMM, InsnKind.ALU_REG_REG,
                      InsnKind.MOVZX, InsnKind.SHIFT_IMM,
                      InsnKind.INC_DEC):
            if insn.reg is not None:
                self._values.pop(insn.reg, None)
        elif kind in (InsnKind.CALL_REL, InsnKind.CALL_INDIRECT):
            for reg in _CALLER_SAVED:
                self._values.pop(reg, None)


def extract_effects(body: FunctionBody,
                    plt_map: Dict[int, str]) -> FunctionEffects:
    """Extract system-API effects from one function.

    ``plt_map`` maps PLT stub virtual addresses to imported symbol
    names (from :meth:`ElfReader.plt_map`).
    """
    effects = FunctionEffects(address=body.start)
    state = _RegisterState()
    for insn in body.instructions:  # address order
        if insn.is_syscall_insn:
            _record_direct_syscall(effects, state)
        elif insn.kind == InsnKind.CALL_REL and insn.target in plt_map:
            name = plt_map[insn.target]
            effects.plt_calls.add(name)
            _record_wrapper_call(effects, state, name)
        elif (insn.kind == InsnKind.JMP_REL and insn.target in plt_map):
            name = plt_map[insn.target]
            effects.plt_calls.add(name)
            _record_wrapper_call(effects, state, name)
        state.apply(insn)
    return effects


def _record_direct_syscall(effects: FunctionEffects,
                           state: _RegisterState) -> None:
    number = state.get(R.RAX)
    if number is None:
        effects.unresolved_syscall_sites += 1
        return
    effects.syscall_numbers.add(number)
    effects.raw_syscall_numbers.add(number)
    if number == _SYS_IOCTL:
        _record_vector(effects, state, "ioctl", R.RSI)
    elif number == _SYS_FCNTL:
        _record_vector(effects, state, "fcntl", R.RSI)
    elif number == _SYS_PRCTL:
        _record_vector(effects, state, "prctl", R.RDI)


def _record_wrapper_call(effects: FunctionEffects, state: _RegisterState,
                         name: str) -> None:
    if name == "syscall":
        number = state.get(R.RDI)
        if number is None:
            effects.unresolved_syscall_sites += 1
        else:
            effects.syscall_numbers.add(number)
            # syscall(SYS_ioctl, fd, op): opcode shifts to arg2 (rdx).
            if number == _SYS_IOCTL:
                _record_vector(effects, state, "ioctl", R.RDX)
            elif number == _SYS_FCNTL:
                _record_vector(effects, state, "fcntl", R.RDX)
            elif number == _SYS_PRCTL:
                _record_vector(effects, state, "prctl", R.RSI)
        return
    wrapper = _VECTOR_WRAPPERS.get(name)
    if wrapper is not None:
        kind, reg = wrapper
        _record_vector(effects, state, kind, reg)


def _record_vector(effects: FunctionEffects, state: _RegisterState,
                   kind: str, reg: int) -> None:
    code = state.get(reg)
    if code is None:
        effects.unresolved_vector_sites += 1
    else:
        effects.vector_codes(kind).add(code)
