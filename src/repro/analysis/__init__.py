"""Static analysis: disassembly, call graphs, footprint extraction,
cross-binary resolution, relational aggregation, and the whole-repo
pipeline."""

from .binary import BinaryAnalysis, RootEffects
from .dynamic import (
    DynamicTracer,
    SyscallEvent,
    Trace,
    TraceError,
    trace_executable,
    validate_over_approximation,
)
from .signatures import Identification, SignatureIndex
from .database import AnalysisDatabase
from .disassembler import CallGraph, CallGraphBuilder, FunctionBody
from .extract import FunctionEffects, extract_effects
from .footprint import Footprint, PackageFootprint
from .pipeline import AnalysisPipeline, AnalysisResult, BinaryTypeStats
from .resolver import FootprintResolver, LibraryIndex
from .string_extract import (
    extract_pseudo_files,
    is_pseudo_file_string,
    normalize_pattern,
    pseudo_files_of,
)

__all__ = [
    "AnalysisDatabase",
    "DynamicTracer",
    "Identification",
    "SignatureIndex",
    "SyscallEvent",
    "Trace",
    "TraceError",
    "trace_executable",
    "validate_over_approximation",
    "AnalysisPipeline",
    "AnalysisResult",
    "BinaryAnalysis",
    "BinaryTypeStats",
    "CallGraph",
    "CallGraphBuilder",
    "Footprint",
    "FootprintResolver",
    "FunctionBody",
    "FunctionEffects",
    "LibraryIndex",
    "PackageFootprint",
    "RootEffects",
    "extract_effects",
    "extract_pseudo_files",
    "is_pseudo_file_string",
    "normalize_pattern",
    "pseudo_files_of",
]
