"""Whole-binary static analysis.

Combines ELF parsing, call-graph discovery, per-function effect
extraction, and string scanning into a single per-binary result that
the cross-binary resolver consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from ..elf.reader import ElfReader
from ..syscalls import fcntl_ops, ioctl, prctl_ops
from ..syscalls.table import BY_NUMBER
from .disassembler import CallGraph, CallGraphBuilder, FunctionBody
from .extract import FunctionEffects, extract_effects
from .string_extract import pseudo_files_of


def _syscall_names(numbers: Set[int]) -> FrozenSet[str]:
    names = set()
    for number in numbers:
        entry = BY_NUMBER.get(number)
        if entry is not None:
            names.add(entry.name)
    return frozenset(names)


def _opcode_names(codes: Set[int], table: Dict[int, object]) -> FrozenSet[str]:
    names = set()
    for code in codes:
        entry = table.get(code)
        names.add(entry.name if entry is not None else f"0x{code:x}")
    return frozenset(names)


@dataclass
class RootEffects:
    """Aggregated local effects reachable from one root (entry/export)."""

    syscalls: FrozenSet[str] = frozenset()
    ioctls: FrozenSet[str] = frozenset()
    fcntls: FrozenSet[str] = frozenset()
    prctls: FrozenSet[str] = frozenset()
    called_imports: FrozenSet[str] = frozenset()
    unresolved_sites: int = 0
    unknown_syscall_numbers: FrozenSet[int] = frozenset()


class BinaryAnalysis:
    """Static analysis of a single ELF image."""

    def __init__(self, elf: ElfReader, name: str = "") -> None:
        self.elf = elf
        self.name = name
        self.soname = elf.soname()
        self.needed = elf.needed_libraries()
        self.imported = frozenset(elf.imported_function_names())
        self.exported = frozenset(elf.exported_function_names())
        self.pseudo_files = pseudo_files_of(elf)
        self.is_shared_library = (
            elf.header.is_shared_object and self.soname is not None)
        self.graph: CallGraph = CallGraphBuilder(elf).build()
        self._plt_map = elf.plt_map()
        self._effects_cache: Dict[int, FunctionEffects] = {}
        self._root_cache: Dict[int, RootEffects] = {}

    @classmethod
    def from_bytes(cls, data: bytes, name: str = "") -> "BinaryAnalysis":
        return cls(ElfReader(data), name=name)

    # --- roots --------------------------------------------------------------

    def roots(self) -> Dict[str, int]:
        """Analyzable roots: the entry point plus exported functions."""
        return dict(self.graph.entry_points)

    def entry_root(self) -> Optional[int]:
        return self.graph.entry_points.get("_start")

    def export_root(self, name: str) -> Optional[int]:
        return self.graph.entry_points.get(name)

    # --- effects --------------------------------------------------------

    def _function_effects(self, addr: int) -> FunctionEffects:
        cached = self._effects_cache.get(addr)
        if cached is None:
            body = self.graph.functions[addr]
            cached = extract_effects(body, self._plt_map)
            self._effects_cache[addr] = cached
        return cached

    def effects_from(self, root_addr: int) -> RootEffects:
        """Local effects over everything reachable from ``root_addr``."""
        cached = self._root_cache.get(root_addr)
        if cached is not None:
            return cached
        numbers: Set[int] = set()
        ioctl_codes: Set[int] = set()
        fcntl_codes: Set[int] = set()
        prctl_codes: Set[int] = set()
        imports: Set[str] = set()
        unresolved = 0
        for addr in self.graph.reachable_from(root_addr):
            effects = self._function_effects(addr)
            numbers |= effects.syscall_numbers
            ioctl_codes |= effects.ioctl_codes
            fcntl_codes |= effects.fcntl_codes
            prctl_codes |= effects.prctl_codes
            imports |= effects.plt_calls
            unresolved += (effects.unresolved_syscall_sites
                           + effects.unresolved_vector_sites)
        unknown = frozenset(n for n in numbers if n not in BY_NUMBER)
        result = RootEffects(
            syscalls=_syscall_names(numbers),
            ioctls=_opcode_names(ioctl_codes, ioctl.BY_CODE),
            fcntls=_opcode_names(fcntl_codes, fcntl_ops.BY_CODE),
            prctls=_opcode_names(prctl_codes, prctl_ops.BY_CODE),
            called_imports=frozenset(imports),
            unresolved_sites=unresolved,
            unknown_syscall_numbers=unknown,
        )
        self._root_cache[root_addr] = result
        return result

    def all_direct_syscalls(self) -> FrozenSet[str]:
        """Syscalls with a raw call site anywhere in this binary.

        Unlike :meth:`effects_from`, this ignores reachability: it
        answers "does this file contain the instruction?", which is
        what Table 1's library-only attribution needs.
        """
        numbers: Set[int] = set()
        for addr in self.graph.functions:
            effects = self._function_effects(addr)
            numbers |= effects.raw_syscall_numbers
        return _syscall_names(numbers)

    def has_direct_syscalls(self) -> bool:
        """Does any discovered function contain a syscall instruction?"""
        for addr in self.graph.functions:
            body = self.graph.functions[addr]
            if any(insn.is_syscall_insn for insn in body.instructions):
                return True
        return False
