"""Hard-coded pseudo-file path extraction (§3.4).

The paper finds pseudo-file usage by scanning binaries for string
constants naming ``/proc``, ``/dev``, and ``/sys`` paths, including
printf-style patterns like ``"/proc/%d/cmdline"`` used with
``sprintf``.  This module implements that scan over a parsed ELF image.
"""

from __future__ import annotations

import re
from typing import FrozenSet, Iterable, List

from ..elf.reader import ElfReader

_PSEUDO_PREFIXES = ("/proc", "/dev", "/sys")

# A path component: ordinary characters or a printf placeholder.
_PATH_RE = re.compile(
    r"^/(?:proc|dev|sys)(?:/(?:[A-Za-z0-9._+:-]|%[dsulx])+)*/?$")


def is_pseudo_file_string(text: str) -> bool:
    """True when ``text`` names (or patterns over) a pseudo file."""
    if not text.startswith(_PSEUDO_PREFIXES):
        return False
    return bool(_PATH_RE.match(text))


def normalize_pattern(text: str) -> str:
    """Canonicalize printf placeholders so patterns compare equal.

    ``/proc/%d/stat`` and ``/proc/%u/stat`` address the same kernel
    surface; both normalize to ``/proc/%d/stat``.  Trailing slashes
    are dropped.
    """
    text = text.rstrip("/") or text
    return re.sub(r"%[dsulx]", "%d", text)


def extract_pseudo_files(strings: Iterable[str]) -> FrozenSet[str]:
    """Filter a string dump down to normalized pseudo-file paths."""
    found = set()
    for text in strings:
        if is_pseudo_file_string(text):
            found.add(normalize_pattern(text))
    return frozenset(found)


def pseudo_files_of(elf: ElfReader) -> FrozenSet[str]:
    """Extract pseudo-file references from an ELF image's data."""
    return extract_pseudo_files(elf.strings())
