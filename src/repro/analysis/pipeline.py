"""Whole-repository analysis pipeline (§2.3, §7).

Drives the full study over a package repository:

1. statically analyze every ELF artifact (disassembly, call graph,
   effect extraction, string scan) — routed through
   :class:`repro.engine.AnalysisEngine`, which fans the per-binary
   work out over a serial/thread/process backend and serves unchanged
   artifacts from a content-addressed cache;
2. index shared libraries by SONAME and resolve cross-library
   footprints from every executable's entry point;
3. approximate interpreted scripts by their interpreter's footprint
   (§2.3: "the system call footprint of the interpreter ...
   over-approximates the expected footprint of the application");
4. aggregate per-package footprints as the union over the package's
   standalone executables;
5. optionally mirror everything into the relational store
   (:class:`repro.analysis.database.AnalysisDatabase`).

Per-binary analysis produces portable :class:`BinaryRecord` values;
resolution, aggregation, and the database mirror consume records, so
results are identical whether a record was computed in-process, in a
worker process, or read back from a warm cache.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..packages.package import BinaryArtifact, BinaryKind, Package
from ..packages.repository import Repository
from .binary import BinaryAnalysis
from .database import AnalysisDatabase
from .footprint import Footprint
from .resolver import FootprintResolver, LibraryIndex

if TYPE_CHECKING:  # imported lazily at runtime (engine imports us)
    from ..engine.core import AnalysisEngine
    from ..engine.errors import FailureRecord
    from ..engine.record import BinaryRecord
    from ..engine.stats import EngineStats


@dataclass
class BinaryTypeStats:
    """Figure 1 input: how executables in the repository execute."""

    elf_binaries: int = 0
    elf_static: int = 0
    elf_shared_libraries: int = 0
    elf_dynamic_executables: int = 0
    scripts_by_interpreter: Counter = field(default_factory=Counter)

    @property
    def total_executables(self) -> int:
        return (self.elf_binaries
                + sum(self.scripts_by_interpreter.values()))

    def fraction(self, count: int) -> float:
        total = self.total_executables
        return count / total if total else 0.0


@dataclass
class AnalysisResult:
    """Everything the metrics layer consumes.

    ``package_footprints`` holds the *executable-based* footprint used
    for weighted completeness (what a package's programs actually
    reach).  ``package_full_footprints`` additionally unions the whole
    surface of shared libraries the package *owns* — this is what makes
    library-bound syscalls (Table 1) as important as their owning
    package is popular, and it drives API importance.
    """

    package_footprints: Dict[str, Footprint]
    package_full_footprints: Dict[str, Footprint]
    binary_footprints: Dict[Tuple[str, str], Footprint]
    type_stats: BinaryTypeStats
    library_index: LibraryIndex
    unresolved_sites: int
    binaries_with_direct_syscalls: int
    binaries_analyzed: int
    # Raw per-binary syscall instruction sites (Table 1 attribution):
    # (package, artifact) -> syscall names with a literal call site.
    direct_syscalls_by_binary: Dict[Tuple[str, str], FrozenSet[str]] = (
        field(default_factory=dict))
    library_binaries: FrozenSet[Tuple[str, str]] = frozenset()
    # Instrumentation of the run that produced this result.
    engine_stats: Optional["EngineStats"] = None
    # Quarantine: per-binary failures captured instead of propagated.
    failures: List["FailureRecord"] = field(default_factory=list)

    @property
    def quarantined(self) -> FrozenSet[Tuple[str, str]]:
        """(package, artifact) keys excluded from the footprints."""
        return frozenset((f.package, f.artifact) for f in self.failures)

    def footprint_of(self, package: str) -> Footprint:
        return self.package_footprints.get(package, Footprint.EMPTY)

    def full_footprint_of(self, package: str) -> Footprint:
        return self.package_full_footprints.get(package, Footprint.EMPTY)

    def syscall_signature_stats(self) -> Tuple[int, int]:
        """(distinct footprints, packages with a unique footprint) — §6."""
        signatures = Counter(
            frozenset(fp.syscalls)
            for fp in self.package_footprints.values())
        distinct = len(signatures)
        unique = sum(1 for count in signatures.values() if count == 1)
        return distinct, unique


class AnalysisPipeline:
    """Orchestrates the study over one repository."""

    def __init__(self, repository: Repository,
                 interpreters: Optional[Mapping[str, str]] = None,
                 engine: Optional["AnalysisEngine"] = None) -> None:
        """``interpreters`` maps interpreter keys (e.g. ``"python"``)
        to the package providing that interpreter.  When omitted, the
        pipeline infers the mapping from executable file names.

        ``engine`` supplies the execution substrate (worker backend +
        record cache); when omitted, a fresh serial engine with an
        in-memory cache is used."""
        self.repository = repository
        self._interpreters = dict(interpreters or {})
        self.engine = engine

    # --- main entry -----------------------------------------------------

    def run(self, database: Optional[AnalysisDatabase] = None,
            ) -> AnalysisResult:
        from ..engine.core import AnalysisEngine, LazyLibraryIndex
        from ..engine.errors import (FailureRecord, TooManyFailuresError,
                                     classify_exception)

        engine = self.engine or AnalysisEngine()
        strict = engine.config.strict
        stats = engine.new_stats()

        # Stage 1: scan the repository — type statistics plus the
        # batch of per-binary analysis tasks.
        type_stats = BinaryTypeStats()
        tasks = []
        artifact_bytes: Dict[Tuple[str, str], Tuple[str, bytes]] = {}
        with stats.stage("scan"):
            for package in self.repository:
                for artifact in package.artifacts:
                    self._count_artifact(type_stats, artifact)
                    if not artifact.is_elf:
                        continue
                    key = (package.name, artifact.name)
                    name = f"{package.name}:{artifact.name}"
                    tasks.append((key, name, artifact.data))
                    artifact_bytes[key] = (name, artifact.data)

        # Stage 2: per-binary analysis through the engine (cache +
        # executor).  ``analyses`` holds full BinaryAnalysis objects
        # for whatever ran in-process; everything else is re-built
        # lazily if a consumer (tracer, Table 5) asks for it.
        records, analyses = engine.analyze(tasks, stats)

        with stats.stage("index"):
            record_index = LibraryIndex()
            lazy_index = LazyLibraryIndex()
            for key, record in records.items():
                if not record.is_shared_library:
                    continue
                record_index.add(record)
                name, data = artifact_bytes[key]
                lazy_index.add_lazy(
                    record,
                    lambda data=data, name=name: (
                        BinaryAnalysis.from_bytes(data, name=name)))
                analysis = analyses.get(key)
                if analysis is not None:
                    lazy_index.attach(record.soname, analysis)

        resolver = FootprintResolver(record_index)
        binary_footprints: Dict[Tuple[str, str], Footprint] = {}
        package_footprints: Dict[str, Footprint] = {}
        package_full_footprints: Dict[str, Footprint] = {}
        direct_syscall_binaries = 0

        direct_by_binary: Dict[Tuple[str, str], FrozenSet[str]] = {}
        library_binaries = set()
        with stats.stage("resolve") as resolve_span:
            for package in self.repository:
                executable_footprints: List[Footprint] = []
                library_parts: List[Footprint] = []
                for artifact in package.artifacts:
                    key = (package.name, artifact.name)
                    record = records.get(key)
                    if record is None:
                        continue
                    direct = record.all_direct_syscalls()
                    if direct:
                        direct_by_binary[key] = direct
                        direct_syscall_binaries += 1
                    if record.is_shared_library:
                        library_binaries.add(key)
                    try:
                        if artifact.is_executable:
                            resolved = resolver.resolve_executable(
                                record)
                            binary_footprints[key] = resolved
                            executable_footprints.append(resolved)
                        else:
                            # A shared library's own surface: every
                            # export's resolved footprint plus its
                            # hard-coded strings.  Accumulated locally
                            # so a mid-loop failure leaves no partial
                            # parts behind.
                            parts = [Footprint.build(
                                pseudo_files=record.pseudo_files)]
                            if record.soname:
                                parts.extend(
                                    resolver.resolve_export(
                                        record.soname, export)
                                    for export in sorted(
                                        record.exported))
                            library_parts.extend(parts)
                    except Exception as error:
                        # Resolution trouble quarantines just this
                        # binary, same as an analysis-stage fault.
                        if strict:
                            raise
                        binary_footprints.pop(key, None)
                        stats.binaries_failed += 1
                        failure = FailureRecord.for_task(
                            key, record.sha256,
                            classify_exception(error, stage="resolve"))
                        stats.failures.append(failure)
                        stats.tracer.record_span(
                            "quarantine", error=True,
                            parent_id=resolve_span.span_id,
                            attrs=failure.to_span_attrs())
                        budget = engine.config.max_failures
                        if (budget is not None
                                and stats.binaries_failed > budget):
                            raise TooManyFailuresError(
                                f"{stats.binaries_failed} binaries "
                                f"failed analysis, exceeding "
                                f"--max-failures={budget}")
                footprint = Footprint.union_all(executable_footprints)
                package_footprints[package.name] = footprint
                package_full_footprints[package.name] = (
                    Footprint.union_all(
                        [footprint] + library_parts))

            # Interpreted scripts: approximate by the interpreter
            # package.
            interpreter_packages = self._interpreter_packages()
            for package in self.repository:
                extra = Footprint.union_all(
                    package_footprints.get(provider, Footprint.EMPTY)
                    for provider in (
                        interpreter_packages.get(artifact.interpreter)
                        for artifact in package.artifacts
                        if artifact.kind == BinaryKind.SCRIPT)
                    if provider is not None)
                if not extra.is_empty:
                    package_footprints[package.name] = (
                        package_footprints[package.name] | extra)
                    package_full_footprints[package.name] = (
                        package_full_footprints[package.name] | extra)

        unresolved = sum(fp.unresolved_sites
                         for fp in binary_footprints.values())
        result = AnalysisResult(
            package_footprints=package_footprints,
            package_full_footprints=package_full_footprints,
            binary_footprints=binary_footprints,
            type_stats=type_stats,
            library_index=lazy_index,
            unresolved_sites=unresolved,
            binaries_with_direct_syscalls=direct_syscall_binaries,
            binaries_analyzed=len(records),
            direct_syscalls_by_binary=direct_by_binary,
            library_binaries=frozenset(library_binaries),
            engine_stats=stats,
            failures=list(stats.failures),
        )
        if database is not None:
            with stats.stage("database"):
                self._populate_database(database, records, resolver)
        return result

    # --- helpers -----------------------------------------------------------

    @staticmethod
    def _count_artifact(stats: BinaryTypeStats,
                        artifact: BinaryArtifact) -> None:
        if artifact.kind == BinaryKind.SCRIPT:
            stats.scripts_by_interpreter[artifact.interpreter or "?"] += 1
            return
        stats.elf_binaries += 1
        if artifact.kind == BinaryKind.ELF_STATIC:
            stats.elf_static += 1
        elif artifact.kind == BinaryKind.SHARED_LIBRARY:
            stats.elf_shared_libraries += 1
        else:
            stats.elf_dynamic_executables += 1

    def _interpreter_packages(self) -> Dict[str, str]:
        if self._interpreters:
            return self._interpreters
        inferred: Dict[str, str] = {}
        for package in self.repository:
            for artifact in package.executables():
                basename = artifact.name.rsplit("/", 1)[-1]
                inferred.setdefault(basename, package.name)
        return inferred

    def _populate_database(
        self,
        database: AnalysisDatabase,
        records: Dict[Tuple[str, str], "BinaryRecord"],
        resolver: FootprintResolver,
    ) -> None:
        """Mirror raw effects and resolved call edges into SQL."""
        for package in self.repository:
            database.add_package(package.name, package.category,
                                 package.depends)
        for (pkg_name, artifact_name), record in records.items():
            package = self.repository.get(pkg_name)
            artifact = package.artifact(artifact_name)
            binary_id = database.add_binary(
                pkg_name, artifact_name, artifact.kind.value,
                soname=record.soname,
                needed=list(record.needed))
            if record.is_shared_library:
                self._insert_library(database, record, resolver)
            elif artifact.is_executable:
                self._insert_executable(database, binary_id, record,
                                        resolver)

    def _insert_executable(self, database: AnalysisDatabase,
                           binary_id: int, record: "BinaryRecord",
                           resolver: FootprintResolver) -> None:
        entry = record.entry_root()
        local = Footprint.build(pseudo_files=record.pseudo_files)
        imports: FrozenSet[str] = frozenset()
        if entry is not None:
            effects = record.effects_from(entry)
            local = local | Footprint.build(
                syscalls=effects.syscalls, ioctls=effects.ioctls,
                fcntls=effects.fcntls, prctls=effects.prctls)
            imports = effects.called_imports
        else:
            imports = record.imported
        database.add_executable_effects(binary_id, local)
        for symbol in imports:
            provider = resolver.find_provider(record, symbol)
            if provider is not None:
                database.add_executable_call(binary_id, provider, symbol)
                if provider == "libc.so.6":
                    database.add_executable_effects(
                        binary_id, Footprint.build(libc_symbols=[symbol]))

    def _insert_library(self, database: AnalysisDatabase,
                        record: "BinaryRecord",
                        resolver: FootprintResolver) -> None:
        soname = record.soname
        for export in sorted(record.exported):
            effects = record.export_effects.get(export)
            if effects is None:
                continue
            database.add_export_effects(soname, export, Footprint.build(
                syscalls=effects.syscalls, ioctls=effects.ioctls,
                fcntls=effects.fcntls, prctls=effects.prctls))
            for symbol in effects.called_imports:
                provider = resolver.find_provider(record, symbol)
                if provider is not None:
                    database.add_export_call(soname, export, provider,
                                             symbol)
                    if provider == "libc.so.6":
                        database.add_export_effects(
                            soname, export,
                            Footprint.build(libc_symbols=[symbol]))
