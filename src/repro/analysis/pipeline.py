"""Whole-repository analysis pipeline (§2.3, §7).

Drives the full study over a package repository:

1. statically analyze every ELF artifact (disassembly, call graph,
   effect extraction, string scan);
2. index shared libraries by SONAME and resolve cross-library
   footprints from every executable's entry point;
3. approximate interpreted scripts by their interpreter's footprint
   (§2.3: "the system call footprint of the interpreter ...
   over-approximates the expected footprint of the application");
4. aggregate per-package footprints as the union over the package's
   standalone executables;
5. optionally mirror everything into the relational store
   (:class:`repro.analysis.database.AnalysisDatabase`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from ..packages.package import BinaryArtifact, BinaryKind, Package
from ..packages.repository import Repository
from .binary import BinaryAnalysis
from .database import AnalysisDatabase
from .footprint import Footprint
from .resolver import FootprintResolver, LibraryIndex


@dataclass
class BinaryTypeStats:
    """Figure 1 input: how executables in the repository execute."""

    elf_binaries: int = 0
    elf_static: int = 0
    elf_shared_libraries: int = 0
    elf_dynamic_executables: int = 0
    scripts_by_interpreter: Counter = field(default_factory=Counter)

    @property
    def total_executables(self) -> int:
        return (self.elf_binaries
                + sum(self.scripts_by_interpreter.values()))

    def fraction(self, count: int) -> float:
        total = self.total_executables
        return count / total if total else 0.0


@dataclass
class AnalysisResult:
    """Everything the metrics layer consumes.

    ``package_footprints`` holds the *executable-based* footprint used
    for weighted completeness (what a package's programs actually
    reach).  ``package_full_footprints`` additionally unions the whole
    surface of shared libraries the package *owns* — this is what makes
    library-bound syscalls (Table 1) as important as their owning
    package is popular, and it drives API importance.
    """

    package_footprints: Dict[str, Footprint]
    package_full_footprints: Dict[str, Footprint]
    binary_footprints: Dict[Tuple[str, str], Footprint]
    type_stats: BinaryTypeStats
    library_index: LibraryIndex
    unresolved_sites: int
    binaries_with_direct_syscalls: int
    binaries_analyzed: int
    # Raw per-binary syscall instruction sites (Table 1 attribution):
    # (package, artifact) -> syscall names with a literal call site.
    direct_syscalls_by_binary: Dict[Tuple[str, str], FrozenSet[str]] = (
        field(default_factory=dict))
    library_binaries: FrozenSet[Tuple[str, str]] = frozenset()

    def footprint_of(self, package: str) -> Footprint:
        return self.package_footprints.get(package, Footprint.EMPTY)

    def full_footprint_of(self, package: str) -> Footprint:
        return self.package_full_footprints.get(package, Footprint.EMPTY)

    def syscall_signature_stats(self) -> Tuple[int, int]:
        """(distinct footprints, packages with a unique footprint) — §6."""
        signatures = Counter(
            frozenset(fp.syscalls)
            for fp in self.package_footprints.values())
        distinct = len(signatures)
        unique = sum(1 for count in signatures.values() if count == 1)
        return distinct, unique


class AnalysisPipeline:
    """Orchestrates the study over one repository."""

    def __init__(self, repository: Repository,
                 interpreters: Optional[Mapping[str, str]] = None) -> None:
        """``interpreters`` maps interpreter keys (e.g. ``"python"``)
        to the package providing that interpreter.  When omitted, the
        pipeline infers the mapping from executable file names."""
        self.repository = repository
        self._interpreters = dict(interpreters or {})

    # --- main entry -----------------------------------------------------

    def run(self, database: Optional[AnalysisDatabase] = None,
            ) -> AnalysisResult:
        index = LibraryIndex()
        analyses: Dict[Tuple[str, str], BinaryAnalysis] = {}
        type_stats = BinaryTypeStats()

        for package in self.repository:
            for artifact in package.artifacts:
                self._count_artifact(type_stats, artifact)
                if not artifact.is_elf:
                    continue
                analysis = BinaryAnalysis.from_bytes(
                    artifact.data, name=f"{package.name}:{artifact.name}")
                analyses[(package.name, artifact.name)] = analysis
                if analysis.is_shared_library:
                    index.add(analysis)

        resolver = FootprintResolver(index)
        binary_footprints: Dict[Tuple[str, str], Footprint] = {}
        package_footprints: Dict[str, Footprint] = {}
        package_full_footprints: Dict[str, Footprint] = {}
        unresolved = 0
        direct_syscall_binaries = 0

        direct_by_binary: Dict[Tuple[str, str], FrozenSet[str]] = {}
        library_binaries = set()
        for package in self.repository:
            footprint = Footprint.EMPTY
            library_extra = Footprint.EMPTY
            for artifact in package.artifacts:
                key = (package.name, artifact.name)
                analysis = analyses.get(key)
                if analysis is None:
                    continue
                direct = analysis.all_direct_syscalls()
                if direct:
                    direct_by_binary[key] = direct
                    direct_syscall_binaries += 1
                if analysis.is_shared_library:
                    library_binaries.add(key)
                if artifact.is_executable:
                    resolved = resolver.resolve_executable(analysis)
                    binary_footprints[key] = resolved
                    footprint = footprint | resolved
                else:
                    # A shared library's own surface: every export's
                    # resolved footprint plus its hard-coded strings.
                    library_extra = library_extra | Footprint.build(
                        pseudo_files=analysis.pseudo_files)
                    if analysis.soname:
                        for export in analysis.exported:
                            library_extra = (
                                library_extra | resolver.resolve_export(
                                    analysis.soname, export))
            package_footprints[package.name] = footprint
            package_full_footprints[package.name] = (
                footprint | library_extra)

        # Interpreted scripts: approximate by the interpreter package.
        interpreter_packages = self._interpreter_packages()
        for package in self.repository:
            extra = Footprint.EMPTY
            for artifact in package.artifacts:
                if artifact.kind != BinaryKind.SCRIPT:
                    continue
                provider = interpreter_packages.get(artifact.interpreter)
                if provider is None:
                    continue
                extra = extra | package_footprints.get(
                    provider, Footprint.EMPTY)
            if not extra.is_empty:
                package_footprints[package.name] = (
                    package_footprints[package.name] | extra)
                package_full_footprints[package.name] = (
                    package_full_footprints[package.name] | extra)

        unresolved = sum(fp.unresolved_sites
                         for fp in binary_footprints.values())
        result = AnalysisResult(
            package_footprints=package_footprints,
            package_full_footprints=package_full_footprints,
            binary_footprints=binary_footprints,
            type_stats=type_stats,
            library_index=index,
            unresolved_sites=unresolved,
            binaries_with_direct_syscalls=direct_syscall_binaries,
            binaries_analyzed=len(analyses),
            direct_syscalls_by_binary=direct_by_binary,
            library_binaries=frozenset(library_binaries),
        )
        if database is not None:
            self._populate_database(database, analyses, resolver,
                                    binary_footprints)
        return result

    # --- helpers -----------------------------------------------------------

    @staticmethod
    def _count_artifact(stats: BinaryTypeStats,
                        artifact: BinaryArtifact) -> None:
        if artifact.kind == BinaryKind.SCRIPT:
            stats.scripts_by_interpreter[artifact.interpreter or "?"] += 1
            return
        stats.elf_binaries += 1
        if artifact.kind == BinaryKind.ELF_STATIC:
            stats.elf_static += 1
        elif artifact.kind == BinaryKind.SHARED_LIBRARY:
            stats.elf_shared_libraries += 1
        else:
            stats.elf_dynamic_executables += 1

    def _interpreter_packages(self) -> Dict[str, str]:
        if self._interpreters:
            return self._interpreters
        inferred: Dict[str, str] = {}
        for package in self.repository:
            for artifact in package.executables():
                basename = artifact.name.rsplit("/", 1)[-1]
                inferred.setdefault(basename, package.name)
        return inferred

    def _populate_database(
        self,
        database: AnalysisDatabase,
        analyses: Dict[Tuple[str, str], BinaryAnalysis],
        resolver: FootprintResolver,
        binary_footprints: Dict[Tuple[str, str], Footprint],
    ) -> None:
        """Mirror raw effects and resolved call edges into SQL."""
        for package in self.repository:
            database.add_package(package.name, package.category,
                                 package.depends)
        for (pkg_name, artifact_name), analysis in analyses.items():
            package = self.repository.get(pkg_name)
            artifact = package.artifact(artifact_name)
            binary_id = database.add_binary(
                pkg_name, artifact_name, artifact.kind.value,
                soname=analysis.soname,
                needed=analysis.needed)
            if analysis.is_shared_library:
                self._insert_library(database, analysis, resolver)
            elif artifact.is_executable:
                self._insert_executable(database, binary_id, analysis,
                                        resolver)

    def _insert_executable(self, database: AnalysisDatabase,
                           binary_id: int, analysis: BinaryAnalysis,
                           resolver: FootprintResolver) -> None:
        entry = analysis.entry_root()
        local = Footprint.build(pseudo_files=analysis.pseudo_files)
        imports: FrozenSet[str] = frozenset()
        if entry is not None:
            effects = analysis.effects_from(entry)
            local = local | Footprint.build(
                syscalls=effects.syscalls, ioctls=effects.ioctls,
                fcntls=effects.fcntls, prctls=effects.prctls)
            imports = effects.called_imports
        else:
            imports = analysis.imported
        database.add_executable_effects(binary_id, local)
        for symbol in imports:
            provider = resolver.find_provider(analysis, symbol)
            if provider is not None:
                database.add_executable_call(binary_id, provider, symbol)
                if provider == "libc.so.6":
                    database.add_executable_effects(
                        binary_id, Footprint.build(libc_symbols=[symbol]))

    def _insert_library(self, database: AnalysisDatabase,
                        analysis: BinaryAnalysis,
                        resolver: FootprintResolver) -> None:
        soname = analysis.soname
        for export in sorted(analysis.exported):
            root = analysis.export_root(export)
            if root is None:
                continue
            effects = analysis.effects_from(root)
            database.add_export_effects(soname, export, Footprint.build(
                syscalls=effects.syscalls, ioctls=effects.ioctls,
                fcntls=effects.fcntls, prctls=effects.prctls))
            for symbol in effects.called_imports:
                provider = resolver.find_provider(analysis, symbol)
                if provider is not None:
                    database.add_export_call(soname, export, provider,
                                             symbol)
                    if provider == "libc.so.6":
                        database.add_export_effects(
                            soname, export,
                            Footprint.build(libc_symbols=[symbol]))
