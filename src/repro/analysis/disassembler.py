"""Function discovery and call-graph construction (§7).

Mirrors the paper's whole-program call-graph analysis: starting from a
binary's entry point and its exported functions, recursively discover
function bodies, record direct calls (``call rel32``), calls through
the PLT (resolved to imported symbol names), and — following the
paper's over-approximation — treat any RIP-relative ``lea`` that forms
a pointer into ``.text`` as a potential call to that address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..elf.reader import ElfReader
from ..x86.decoder import decode
from ..x86.instructions import Instruction, InsnKind


@dataclass
class FunctionBody:
    """All instructions reachable inside one function."""

    start: int
    instructions: List[Instruction] = field(default_factory=list)
    local_calls: Set[int] = field(default_factory=set)     # callee vaddrs
    plt_calls: Set[str] = field(default_factory=set)       # imported names
    pointer_targets: Set[int] = field(default_factory=set)  # lea'd code ptrs
    has_indirect_call: bool = False

    @property
    def end(self) -> int:
        if not self.instructions:
            return self.start
        return max(insn.end for insn in self.instructions)


class CallGraph:
    """Per-binary call graph over discovered functions."""

    def __init__(self) -> None:
        self.functions: Dict[int, FunctionBody] = {}
        self.entry_points: Dict[str, int] = {}  # name -> vaddr

    def callees(self, addr: int,
                follow_pointers: bool = True) -> FrozenSet[int]:
        body = self.functions.get(addr)
        if body is None:
            return frozenset()
        if follow_pointers:
            # Pointer formation counts as a potential call (§7's
            # over-approximation).
            return frozenset(body.local_calls | body.pointer_targets)
        return frozenset(body.local_calls)

    def reachable_from(self, addr: int,
                       follow_pointers: bool = True) -> FrozenSet[int]:
        """Function addresses reachable from ``addr`` (inclusive).

        ``follow_pointers=False`` disables the §7 function-pointer
        over-approximation (used by the ablation benchmarks)."""
        seen: Set[int] = set()
        stack = [addr]
        while stack:
            current = stack.pop()
            if current in seen or current not in self.functions:
                continue
            seen.add(current)
            stack.extend(self.callees(current,
                                      follow_pointers=follow_pointers))
        return frozenset(seen)

    def reachable_instructions(self, addr: int) -> List[Instruction]:
        out: List[Instruction] = []
        for fn_addr in sorted(self.reachable_from(addr)):
            out.extend(self.functions[fn_addr].instructions)
        return out

    def reachable_plt_calls(self, addr: int) -> FrozenSet[str]:
        names: Set[str] = set()
        for fn_addr in self.reachable_from(addr):
            names |= self.functions[fn_addr].plt_calls
        return frozenset(names)


class CallGraphBuilder:
    """Builds a :class:`CallGraph` from an :class:`ElfReader`."""

    def __init__(self, elf: ElfReader) -> None:
        self.elf = elf
        self.text = elf.text()
        self.text_vaddr = elf.text_vaddr()
        self.text_end = self.text_vaddr + len(self.text)
        self.plt_map = elf.plt_map()

    def _in_text(self, vaddr: int) -> bool:
        return self.text_vaddr <= vaddr < self.text_end

    def build(self) -> CallGraph:
        graph = CallGraph()
        roots: List[Tuple[str, int]] = []
        header = self.elf.header
        if header.e_entry and self._in_text(header.e_entry):
            roots.append(("_start", header.e_entry))
        for symbol in self.elf.exported_symbols():
            if symbol.is_function and self._in_text(symbol.st_value):
                roots.append((symbol.name, symbol.st_value))

        pending: List[int] = []
        for name, addr in roots:
            graph.entry_points[name] = addr
            pending.append(addr)

        while pending:
            addr = pending.pop()
            if addr in graph.functions:
                continue
            body = self._explore_function(addr)
            graph.functions[addr] = body
            for callee in body.local_calls | body.pointer_targets:
                if callee not in graph.functions:
                    pending.append(callee)
        return graph

    def _explore_function(self, start: int) -> FunctionBody:
        """Intra-procedural traversal from ``start``.

        Follows fall-through and branch targets; stops at returns and
        at calls' continuations.  ``call`` targets become call-graph
        edges rather than inline flow.
        """
        body = FunctionBody(start=start)
        visited: Set[int] = set()
        worklist = [start]
        while worklist:
            vaddr = worklist.pop()
            if vaddr in visited or not self._in_text(vaddr):
                continue
            visited.add(vaddr)
            insn = decode(self.text, vaddr - self.text_vaddr, vaddr)
            body.instructions.append(insn)

            if insn.kind == InsnKind.CALL_REL and insn.target is not None:
                if insn.target in self.plt_map:
                    body.plt_calls.add(self.plt_map[insn.target])
                elif self._in_text(insn.target):
                    body.local_calls.add(insn.target)
                worklist.append(insn.end)
            elif insn.kind == InsnKind.CALL_INDIRECT:
                body.has_indirect_call = True
                worklist.append(insn.end)
            elif insn.kind == InsnKind.JMP_REL and insn.target is not None:
                # Tail jumps into the PLT are tail calls.
                if insn.target in self.plt_map:
                    body.plt_calls.add(self.plt_map[insn.target])
                elif self._in_text(insn.target):
                    worklist.append(insn.target)
            elif insn.kind == InsnKind.JCC_REL and insn.target is not None:
                if self._in_text(insn.target):
                    worklist.append(insn.target)
                worklist.append(insn.end)
            elif insn.is_terminator:
                pass  # ret / hlt / indirect jmp: path ends
            else:
                if insn.kind == InsnKind.LEA_RIP and insn.target is not None:
                    if self._in_text(insn.target):
                        # Function-pointer formation: §7's
                        # over-approximation treats it as a call.
                        body.pointer_targets.add(insn.target)
                worklist.append(insn.end)
        body.instructions.sort(key=lambda i: i.address)
        return body
