"""System-call footprint signatures (§6).

The study observes that 11,680 of 31,433 applications have distinct
syscall footprints and 9,133 are unique — enough structure that a
footprint works as a *birthmark*: prior work used syscall profiles to
identify malware and detect software theft, and the paper notes its
dataset enables exactly that.

This module builds a signature index over measured package footprints
and identifies which package (or how narrow a candidate set) could
have produced an observed syscall trace:

* exact identification when the observed set equals a unique
  footprint;
* containment-based candidate ranking for partial observations (a
  dynamic trace under-approximates the footprint, so candidates are
  packages whose footprint *covers* the observation, ranked by how
  little else they could do).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from .footprint import Footprint


@dataclass(frozen=True)
class Identification:
    """Result of matching an observed syscall set."""

    exact: Optional[str]                 # unique exact match, if any
    exact_matches: Tuple[str, ...]       # all packages with equal set
    candidates: Tuple[str, ...]          # covering packages, best first

    @property
    def identified(self) -> bool:
        return self.exact is not None


class SignatureIndex:
    """Index of per-package syscall signatures."""

    def __init__(self, footprints: Mapping[str, Footprint]) -> None:
        self._signatures: Dict[str, FrozenSet[str]] = {
            package: footprint.syscalls
            for package, footprint in footprints.items()
            if footprint.syscalls}
        self._by_signature: Dict[FrozenSet[str], List[str]] = (
            defaultdict(list))
        for package, signature in self._signatures.items():
            self._by_signature[signature].append(package)
        # Inverted index for candidate filtering.
        self._by_syscall: Dict[str, set] = defaultdict(set)
        for package, signature in self._signatures.items():
            for name in signature:
                self._by_syscall[name].add(package)

    # --- statistics (§6) --------------------------------------------------

    def distinct_count(self) -> int:
        return len(self._by_signature)

    def unique_count(self) -> int:
        return sum(1 for packages in self._by_signature.values()
                   if len(packages) == 1)

    def signature_of(self, package: str) -> FrozenSet[str]:
        return self._signatures.get(package, frozenset())

    def __len__(self) -> int:
        return len(self._signatures)

    # --- identification ------------------------------------------------

    def identify(self, observed: Iterable[str],
                 max_candidates: int = 10) -> Identification:
        """Match an observed syscall set against the index.

        Exact match first; otherwise rank covering signatures by
        tightness (fewest unobserved extra syscalls), which is the
        maximum-likelihood choice when observations are a random
        subset of the true footprint.
        """
        observation = frozenset(observed)
        exact_matches = tuple(sorted(
            self._by_signature.get(observation, [])))
        exact = exact_matches[0] if len(exact_matches) == 1 else None

        candidates: List[Tuple[int, str]] = []
        if observation:
            # Packages covering the observation = intersection of the
            # per-syscall posting lists.
            postings = [self._by_syscall.get(name, set())
                        for name in observation]
            covering = set.intersection(*postings) if postings else set()
            for package in covering:
                extra = len(self._signatures[package] - observation)
                candidates.append((extra, package))
        candidates.sort()
        return Identification(
            exact=exact,
            exact_matches=exact_matches,
            candidates=tuple(name for _, name in
                             candidates[:max_candidates]),
        )

    def ambiguity_report(self) -> List[Tuple[FrozenSet[str], List[str]]]:
        """Signature classes shared by more than one package."""
        return sorted(
            ((signature, sorted(packages))
             for signature, packages in self._by_signature.items()
             if len(packages) > 1),
            key=lambda item: -len(item[1]))
