"""API footprint model (§2).

A footprint records every system API a binary (or package) could
invoke: system calls, vectored operation codes, hard-coded pseudo-file
paths, and imported libc symbols.  Footprints form a join-semilattice
under :meth:`Footprint.union`, which is how per-binary results
aggregate into per-package and per-installation views.
"""

from __future__ import annotations

from collections.abc import Set as AbstractSet
from dataclasses import dataclass, field
from typing import ClassVar, FrozenSet, Iterable, Mapping


def _fs(items: Iterable[str]) -> FrozenSet[str]:
    return frozenset(items)


@dataclass(frozen=True)
class Footprint:
    """The set of system APIs an artifact can reach."""

    syscalls: FrozenSet[str] = frozenset()
    ioctls: FrozenSet[str] = frozenset()        # opcode names
    fcntls: FrozenSet[str] = frozenset()
    prctls: FrozenSet[str] = frozenset()
    pseudo_files: FrozenSet[str] = frozenset()  # /proc, /dev, /sys paths
    libc_symbols: FrozenSet[str] = frozenset()  # imported libc functions
    unresolved_sites: int = 0                    # §2.4: dataflow failures

    # Shared empty sentinel, populated after the class definition.
    EMPTY: ClassVar["Footprint"]

    @classmethod
    def build(cls, syscalls: Iterable[str] = (),
              ioctls: Iterable[str] = (),
              fcntls: Iterable[str] = (),
              prctls: Iterable[str] = (),
              pseudo_files: Iterable[str] = (),
              libc_symbols: Iterable[str] = (),
              unresolved_sites: int = 0) -> "Footprint":
        return cls(_fs(syscalls), _fs(ioctls), _fs(fcntls), _fs(prctls),
                   _fs(pseudo_files), _fs(libc_symbols), unresolved_sites)

    @classmethod
    def union_all(cls, footprints: Iterable["Footprint"]) -> "Footprint":
        """Union of many footprints without intermediate instances.

        The pipeline's hot loops fold dozens of footprints per package
        (one per export for libraries); pairwise ``|`` builds O(n)
        throwaway frozensets per dimension, this builds one.
        """
        syscalls: set = set()
        ioctls: set = set()
        fcntls: set = set()
        prctls: set = set()
        pseudo_files: set = set()
        libc_symbols: set = set()
        unresolved = 0
        for footprint in footprints:
            syscalls |= footprint.syscalls
            ioctls |= footprint.ioctls
            fcntls |= footprint.fcntls
            prctls |= footprint.prctls
            pseudo_files |= footprint.pseudo_files
            libc_symbols |= footprint.libc_symbols
            unresolved += footprint.unresolved_sites
        if not (syscalls or ioctls or fcntls or prctls or pseudo_files
                or libc_symbols or unresolved):
            return cls.EMPTY
        return cls(frozenset(syscalls), frozenset(ioctls),
                   frozenset(fcntls), frozenset(prctls),
                   frozenset(pseudo_files), frozenset(libc_symbols),
                   unresolved)

    def union(self, other: "Footprint") -> "Footprint":
        return Footprint(
            self.syscalls | other.syscalls,
            self.ioctls | other.ioctls,
            self.fcntls | other.fcntls,
            self.prctls | other.prctls,
            self.pseudo_files | other.pseudo_files,
            self.libc_symbols | other.libc_symbols,
            self.unresolved_sites + other.unresolved_sites,
        )

    def __or__(self, other: "Footprint") -> "Footprint":
        return self.union(other)

    @property
    def is_empty(self) -> bool:
        return not (self.syscalls or self.ioctls or self.fcntls
                    or self.prctls or self.pseudo_files
                    or self.libc_symbols)

    def api_set(self) -> FrozenSet[str]:
        """All APIs as namespaced identifiers (for mixed-type metrics).

        System calls are unprefixed (matching the paper's tables);
        other API types carry a ``type:`` prefix.
        """
        return frozenset(
            list(self.syscalls)
            + [f"ioctl:{op}" for op in self.ioctls]
            + [f"fcntl:{op}" for op in self.fcntls]
            + [f"prctl:{op}" for op in self.prctls]
            + [f"pseudofile:{path}" for path in self.pseudo_files]
            + [f"libc:{name}" for name in self.libc_symbols]
        )

    def requires_only(self, supported_syscalls: Iterable[str]) -> bool:
        """True when every syscall in this footprint is supported.

        Set-like arguments are tested directly; only non-set iterables
        pay for materialization (callers probe thousands of footprints
        against the same supported set).
        """
        if isinstance(supported_syscalls, AbstractSet):
            return self.syscalls <= supported_syscalls
        return self.syscalls <= frozenset(supported_syscalls)

    def restrict_syscalls(self) -> FrozenSet[str]:
        return self.syscalls


# Sentinel empty footprint (shared instance).
Footprint.EMPTY = Footprint()


@dataclass
class PackageFootprint:
    """A package's aggregated footprint plus provenance."""

    package: str
    footprint: Footprint = field(default_factory=lambda: Footprint.EMPTY)
    per_executable: Mapping[str, Footprint] = field(default_factory=dict)

    def merged_with(self, other: Footprint) -> "PackageFootprint":
        # No-copy fast path: an empty provenance map has nothing the
        # new instance could alias-mutate, so share the instance.
        per_executable = (self.per_executable if not self.per_executable
                          else dict(self.per_executable))
        return PackageFootprint(self.package,
                                self.footprint | other,
                                per_executable)
