"""Interned API footprints: one bitmask per dimension.

A :class:`BitsetFootprint` is the interned mirror of
:class:`repro.analysis.footprint.Footprint`: six Python-int masks, one
per entry of :data:`repro.dataset.dimensions.DIMENSION_ORDER`, whose
bit positions are the dense ids assigned by the owning
:class:`repro.dataset.ApiSpace`.  Masks from different spaces are not
comparable; the :class:`repro.dataset.Dataset` facade guarantees all
of its footprints share one space.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from .dimensions import DIMENSION_ORDER

#: Index of each dimension inside the mask tuple.
DIMENSION_INDEX = {name: i for i, name in enumerate(DIMENSION_ORDER)}


class BitsetFootprint:
    """The set of APIs an artifact can reach, as per-dimension masks."""

    __slots__ = ("masks",)

    def __init__(self, masks: Iterable[int] = ()) -> None:
        materialized = tuple(masks) or (0,) * len(DIMENSION_ORDER)
        if len(materialized) != len(DIMENSION_ORDER):
            raise ValueError(
                f"expected {len(DIMENSION_ORDER)} masks, "
                f"got {len(materialized)}")
        self.masks: Tuple[int, ...] = materialized

    # --- per-dimension access -------------------------------------------

    def mask(self, dimension: str) -> int:
        """The mask for one concrete dimension (not ``"all"``; the
        composed mask needs the owning space's offsets — see
        :meth:`repro.dataset.ApiSpace.all_mask`)."""
        return self.masks[DIMENSION_INDEX[dimension]]

    @property
    def is_empty(self) -> bool:
        return not any(self.masks)

    def bit_count(self) -> int:
        """Total APIs across every dimension."""
        return sum(mask.bit_count() for mask in self.masks)

    # --- set algebra ----------------------------------------------------

    def union(self, other: "BitsetFootprint") -> "BitsetFootprint":
        return BitsetFootprint(
            a | b for a, b in zip(self.masks, other.masks))

    def __or__(self, other: "BitsetFootprint") -> "BitsetFootprint":
        return self.union(other)

    def difference(self, other: "BitsetFootprint") -> "BitsetFootprint":
        return BitsetFootprint(
            a & ~b for a, b in zip(self.masks, other.masks))

    def subset_of(self, other: "BitsetFootprint") -> bool:
        return all(a & ~b == 0
                   for a, b in zip(self.masks, other.masks))

    @classmethod
    def union_all(cls, footprints: Iterable["BitsetFootprint"],
                  ) -> "BitsetFootprint":
        masks = [0] * len(DIMENSION_ORDER)
        for footprint in footprints:
            for index, mask in enumerate(footprint.masks):
                masks[index] |= mask
        return cls(masks)

    # --- plumbing -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, BitsetFootprint)
                and self.masks == other.masks)

    def __hash__(self) -> int:
        return hash(self.masks)

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{name}={mask.bit_count()}"
            for name, mask in zip(DIMENSION_ORDER, self.masks)
            if mask)
        return f"BitsetFootprint({sizes or 'empty'})"
