"""The shared dataset substrate (see DESIGN.md, "Dataset substrate").

One immutable, interned view of the study's inputs — API footprints as
per-dimension bitmasks, popcon probabilities as a weight vector, the
dependency graph as a cached SCC condensation — queried by every layer
above analysis: metrics, compat, study, reports, CLI.
"""

from .bitset import DIMENSION_INDEX, BitsetFootprint
from .codec import (DATASET_CODEC_VERSION, DatasetCodecError,
                    dataset_from_dict, dataset_from_json,
                    dataset_to_dict, dataset_to_json,
                    footprints_fingerprint)
from .core import ApiSpace, Dataset, DatasetStats, as_dataset
from .dimensions import (ALL_DIMENSIONS, DIMENSION_ORDER, DIMENSIONS,
                         FOOTPRINT_FIELDS, NAMESPACE_PREFIXES,
                         namespaced, selector, split_namespaced)
from .graph import CondensedDependencyGraph, SupportTracker
from .interner import ApiInterner, iter_bits, popcount

__all__ = [
    "ALL_DIMENSIONS",
    "ApiInterner",
    "ApiSpace",
    "BitsetFootprint",
    "CondensedDependencyGraph",
    "DATASET_CODEC_VERSION",
    "DIMENSIONS",
    "DIMENSION_INDEX",
    "DIMENSION_ORDER",
    "Dataset",
    "DatasetCodecError",
    "DatasetStats",
    "FOOTPRINT_FIELDS",
    "NAMESPACE_PREFIXES",
    "SupportTracker",
    "as_dataset",
    "dataset_from_dict",
    "dataset_from_json",
    "dataset_to_dict",
    "dataset_to_json",
    "footprints_fingerprint",
    "iter_bits",
    "namespaced",
    "popcount",
    "selector",
    "split_namespaced",
]
