"""The shared dataset facade: interned footprints + weights + graph.

Every metric in the study is a set-algebra query over the same three
inputs — per-package API footprints, the popcon weight vector, and the
dependency graph.  :class:`Dataset` binds them once: footprints are
interned into per-dimension bitmasks (:class:`repro.dataset.ApiSpace`
assigns the ids), popcon probabilities are materialized into a weight
vector aligned with package ids, and the SCC-condensed dependency DAG
is built once per (dimension, universe) and cached.

Compatibility contract: a :class:`Dataset` is itself a
``Mapping[str, Footprint]`` over the *source* footprints, so every
legacy signature that takes a footprint mapping accepts one unchanged.
All derived orderings preserve the input mapping's package order —
user lists, weight summations, and curve accumulations run in exactly
the sequence the legacy set-based code used, which is what keeps
floating-point results bit-for-bit identical (see
``tests/test_dataset_equivalence.py``).
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from dataclasses import dataclass
from typing import (Dict, Iterable, Iterator, List, Mapping, Optional,
                    Tuple, Union)

from ..analysis.footprint import Footprint
from ..packages.popcon import PopularityContest
from ..packages.repository import Repository
from .bitset import DIMENSION_INDEX, BitsetFootprint
from .dimensions import (DIMENSION_ORDER, FOOTPRINT_FIELDS,
                         NAMESPACE_PREFIXES, split_namespaced)
from .graph import CondensedDependencyGraph
from .interner import ApiInterner, iter_bits


class ApiSpace:
    """The interned API universe: one :class:`ApiInterner` per
    dimension, plus the composed ``"all"`` space.

    The ``"all"`` space concatenates the per-dimension id ranges in
    :data:`DIMENSION_ORDER` — a dimension's ids are shifted by the
    total size of every dimension before it, with system calls at
    offset 0.  Names in the ``"all"`` space carry the
    :data:`NAMESPACE_PREFIXES` namespacing, matching
    :meth:`Footprint.api_set`.
    """

    __slots__ = ("interners", "offsets", "all_size")

    def __init__(self, interners: Mapping[str, ApiInterner]) -> None:
        self.interners: Dict[str, ApiInterner] = {
            dim: interners.get(dim, ApiInterner())
            for dim in DIMENSION_ORDER}
        offsets: Dict[str, int] = {}
        offset = 0
        for dim in DIMENSION_ORDER:
            offsets[dim] = offset
            offset += len(self.interners[dim])
        self.offsets = offsets
        self.all_size = offset

    @classmethod
    def from_footprints(cls, footprints: Iterable[Footprint],
                        ) -> "ApiSpace":
        materialized = list(footprints)
        interners = {}
        for dim in DIMENSION_ORDER:
            field = FOOTPRINT_FIELDS[dim]
            names: set = set()
            for footprint in materialized:
                names |= getattr(footprint, field)
            interners[dim] = ApiInterner(names)
        return cls(interners)

    # --- introspection --------------------------------------------------

    def interner(self, dimension: str) -> ApiInterner:
        return self.interners[dimension]

    def size(self, dimension: str) -> int:
        if dimension == "all":
            return self.all_size
        return len(self.interners[dimension])

    def universe_mask(self, dimension: str) -> int:
        return (1 << self.size(dimension)) - 1

    def universe_names(self, dimension: str) -> List[str]:
        """Every interned name, in id order (``"all"``: namespaced)."""
        if dimension != "all":
            return list(self.interners[dimension].names)
        names: List[str] = []
        for dim in DIMENSION_ORDER:
            prefix = NAMESPACE_PREFIXES[dim]
            names.extend(prefix + name
                         for name in self.interners[dim].names)
        return names

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ApiSpace)
                and all(self.interners[dim] == other.interners[dim]
                        for dim in DIMENSION_ORDER))

    def __hash__(self) -> int:
        return hash(tuple(self.interners[dim]._names
                          for dim in DIMENSION_ORDER))

    def __repr__(self) -> str:
        sizes = ", ".join(f"{dim}={len(self.interners[dim])}"
                          for dim in DIMENSION_ORDER)
        return f"ApiSpace({sizes})"

    # --- interning ------------------------------------------------------

    def intern(self, footprint: Footprint) -> BitsetFootprint:
        """Intern one footprint (strict: every name must be known)."""
        return BitsetFootprint(
            self.interners[dim].mask_of(
                getattr(footprint, FOOTPRINT_FIELDS[dim]), strict=True)
            for dim in DIMENSION_ORDER)

    def all_mask(self, footprint: BitsetFootprint) -> int:
        """The footprint's composed ``"all"``-space mask."""
        mask = 0
        offsets = self.offsets
        for dim, dim_mask in zip(DIMENSION_ORDER, footprint.masks):
            mask |= dim_mask << offsets[dim]
        return mask

    def mask_of(self, dimension: str, names: Iterable[str]) -> int:
        """Bitmask of ``names`` in ``dimension``'s id space.

        Unknown names are ignored (a supported-API set may name APIs
        no measured package uses).  ``"all"`` accepts namespaced names.
        """
        if dimension != "all":
            return self.interners[dimension].mask_of(names)
        mask = 0
        for name in names:
            dim, bare = split_namespaced(name)
            interner = self.interners[dim]
            if bare in interner:
                mask |= 1 << (self.offsets[dim] + interner.id_of(bare))
        return mask

    def names_of(self, dimension: str, mask: int) -> List[str]:
        """The names in ``mask``, in id order (``"all"``: namespaced)."""
        if dimension != "all":
            return self.interners[dimension].names_of(mask)
        names: List[str] = []
        for dim in DIMENSION_ORDER:
            interner = self.interners[dim]
            sub = (mask >> self.offsets[dim]) & interner.universe_mask
            prefix = NAMESPACE_PREFIXES[dim]
            names.extend(prefix + name
                         for name in interner.names_of(sub))
        return names

    def name_of(self, dimension: str, api_id: int) -> str:
        if dimension != "all":
            return self.interners[dimension].name_of(api_id)
        for dim in reversed(DIMENSION_ORDER):
            offset = self.offsets[dim]
            if api_id >= offset:
                return (NAMESPACE_PREFIXES[dim]
                        + self.interners[dim].name_of(api_id - offset))
        raise IndexError(api_id)

    def id_of(self, dimension: str, name: str) -> int:
        if dimension != "all":
            return self.interners[dimension].id_of(name)
        dim, bare = split_namespaced(name)
        return self.offsets[dim] + self.interners[dim].id_of(bare)


@dataclass(frozen=True)
class DatasetStats:
    """Summary of one dataset, for the CLI/report ``dataset`` surface."""

    n_packages: int
    n_apis: Dict[str, int]          # dimension -> interned universe size
    n_nonempty: Dict[str, int]      # dimension -> packages using it
    total_weight: Optional[float]   # sum of install probabilities
    has_popcon: bool
    has_repository: bool
    n_dependency_edges: int
    n_virtual_packages: int = 0     # provided names with no real package
    n_provider_edges: int = 0       # total Provides: declarations
    n_alternative_groups: int = 0   # dependency groups with >1 alternative


class Dataset(MappingABC):
    """Interned package footprints + popcon weights + dependency DAG.

    Also a read-only ``Mapping[str, Footprint]`` over the source
    footprints, so it can be passed wherever a footprint mapping is
    expected.  Package ids are positions in the *input mapping order*
    (never re-sorted — see the module docstring).
    """

    def __init__(self, footprints: Mapping[str, Footprint],
                 popcon: Optional[PopularityContest] = None,
                 repository: Optional[Repository] = None,
                 space: Optional[ApiSpace] = None,
                 bitsets: Optional[Iterable[BitsetFootprint]] = None,
                 ) -> None:
        self._footprints: Dict[str, Footprint] = dict(footprints)
        self.packages: Tuple[str, ...] = tuple(self._footprints)
        self.package_index: Dict[str, int] = {
            name: i for i, name in enumerate(self.packages)}
        if space is None:
            space = ApiSpace.from_footprints(self._footprints.values())
        self.space = space
        if bitsets is None:
            self.bitsets: List[BitsetFootprint] = [
                space.intern(fp) for fp in self._footprints.values()]
        else:
            self.bitsets = list(bitsets)
            if len(self.bitsets) != len(self.packages):
                raise ValueError("bitsets do not match packages")
        self.popcon = popcon
        self.repository = repository
        # Lazy caches.  All are pure functions of the fields above, so
        # sharing them across rebound copies is safe.
        self._weights: Optional[Tuple[float, ...]] = None
        self._weight_by_name: Optional[Dict[str, float]] = None
        self._masks: Dict[str, List[int]] = {}
        self._bit_counts: Dict[str, List[int]] = {}
        self._universe_ids: Dict[Tuple[str, bool], List[int]] = {}
        self._users: Dict[str, List[List[int]]] = {}
        self._importance: Dict[str, Dict[str, float]] = {}
        self._usage: Dict[Tuple[str, bool], Dict[str, float]] = {}
        self._graphs: Dict[Tuple[str, bool, bool],
                           CondensedDependencyGraph] = {}

    # --- Mapping[str, Footprint] protocol -------------------------------

    def __getitem__(self, package: str) -> Footprint:
        return self._footprints[package]

    def __iter__(self) -> Iterator[str]:
        return iter(self._footprints)

    def __len__(self) -> int:
        return len(self._footprints)

    def __repr__(self) -> str:
        return (f"Dataset({len(self.packages)} packages, {self.space!r}, "
                f"popcon={self.popcon is not None}, "
                f"repository={self.repository is not None})")

    # --- weights --------------------------------------------------------

    def _require_popcon(self) -> PopularityContest:
        if self.popcon is None:
            raise ValueError("this Dataset was built without a "
                             "PopularityContest; weighted queries need "
                             "one (pass popcon= when constructing)")
        return self.popcon

    @property
    def weights(self) -> Tuple[float, ...]:
        """Install probability per package id, in package order."""
        if self._weights is None:
            popcon = self._require_popcon()
            self._weights = tuple(popcon.install_probability(name)
                                  for name in self.packages)
        return self._weights

    def weight_of(self, package: str) -> float:
        if self._weight_by_name is None:
            self._weight_by_name = dict(zip(self.packages, self.weights))
        return self._weight_by_name[package]

    # --- per-package masks ----------------------------------------------

    def masks(self, dimension: str) -> List[int]:
        """Per-package mask in ``dimension``'s id space, package order."""
        cached = self._masks.get(dimension)
        if cached is None:
            if dimension == "all":
                all_mask = self.space.all_mask
                cached = [all_mask(bits) for bits in self.bitsets]
            else:
                index = DIMENSION_INDEX[dimension]
                cached = [bits.masks[index] for bits in self.bitsets]
            self._masks[dimension] = cached
        return cached

    def bit_counts(self, dimension: str) -> List[int]:
        """Per-package API count in ``dimension`` (do not mutate)."""
        cached = self._bit_counts.get(dimension)
        if cached is None:
            cached = [mask.bit_count() for mask in self.masks(dimension)]
            self._bit_counts[dimension] = cached
        return cached

    def universe_ids(self, dimension: str,
                     ignore_empty: bool = True) -> List[int]:
        """Package ids in the measurement universe, package order.

        ``ignore_empty=True`` drops packages with an empty footprint in
        the dimension (the same filter
        :func:`repro.metrics.completeness.weighted_completeness`
        applies to both numerator and denominator).
        """
        key = (dimension, ignore_empty)
        cached = self._universe_ids.get(key)
        if cached is None:
            if ignore_empty:
                cached = [i for i, mask in enumerate(self.masks(dimension))
                          if mask]
            else:
                cached = list(range(len(self.packages)))
            self._universe_ids[key] = cached
        return cached

    def empty_names(self, dimension: str) -> frozenset:
        """Packages with an empty footprint in ``dimension`` — the
        trivially-supported set dependency closures assume supported."""
        nonempty = set(self.universe_ids(dimension, ignore_empty=True))
        return frozenset(name for i, name in enumerate(self.packages)
                         if i not in nonempty)

    # --- derived tables -------------------------------------------------

    def users_index(self, dimension: str) -> List[List[int]]:
        """api id -> package ids using it, in package order.

        The per-API package order matches the legacy
        ``dependents_index`` lists exactly (both append while scanning
        packages in mapping order), which keeps importance products
        bit-for-bit identical.
        """
        cached = self._users.get(dimension)
        if cached is None:
            cached = [[] for _ in range(self.space.size(dimension))]
            for pkg_id, mask in enumerate(self.masks(dimension)):
                for api_id in iter_bits(mask):
                    cached[api_id].append(pkg_id)
            self._users[dimension] = cached
        return cached

    def importance_table(self, dimension: str = "syscall",
                         universe: Iterable[str] = (),
                         ) -> Dict[str, float]:
        """Weighted API importance (Appendix A.1) for every used API.

        Identical floats to the legacy path: per API, the product of
        ``1 - Pr{pkg}`` runs over users in package order.
        """
        base = self._importance.get(dimension)
        if base is None:
            weights = self.weights
            name_of = self.space.name_of
            base = {}
            for api_id, users in enumerate(self.users_index(dimension)):
                if not users:
                    continue
                probability_none = 1.0
                for pkg_id in users:
                    probability_none *= 1.0 - weights[pkg_id]
                base[name_of(dimension, api_id)] = 1.0 - probability_none
            self._importance[dimension] = base
        table = dict(base)
        for api in universe:
            table.setdefault(api, 0.0)
        return table

    def usage_table(self, dimension: str = "syscall",
                    ignore_empty: bool = False,
                    universe: Iterable[str] = (),
                    ) -> Dict[str, float]:
        """Unweighted importance (§5): fraction of packages per API.

        ``ignore_empty`` controls the denominator — the legacy curve
        computes usage over the non-empty universe.
        """
        key = (dimension, ignore_empty)
        base = self._usage.get(key)
        if base is None:
            total = len(self.universe_ids(dimension, ignore_empty))
            base = {}
            if total:
                name_of = self.space.name_of
                for api_id, users in enumerate(
                        self.users_index(dimension)):
                    if users:
                        base[name_of(dimension, api_id)] = (
                            len(users) / total)
            self._usage[key] = base
        table = dict(base)
        for api in universe:
            table.setdefault(api, 0.0)
        return table

    # --- dependency graph -----------------------------------------------

    def condensed_graph(self, dimension: str = "syscall",
                        ignore_empty: bool = True,
                        assume_trivial: bool = True,
                        ) -> CondensedDependencyGraph:
        """The SCC-condensed dependency DAG over the universe.

        ``assume_trivial`` treats empty-footprint packages as always
        supported (the completeness-curve convention; weighted
        completeness with ``ignore_empty=False`` assumes nothing).
        """
        if self.repository is None:
            raise ValueError("this Dataset was built without a "
                             "Repository; dependency closure needs one")
        key = (dimension, ignore_empty, assume_trivial)
        cached = self._graphs.get(key)
        if cached is None:
            universe = [self.packages[i]
                        for i in self.universe_ids(dimension,
                                                   ignore_empty)]
            assumed = (self.empty_names(dimension) if assume_trivial
                       else frozenset())
            cached = CondensedDependencyGraph(universe, self.repository,
                                              assumed)
            self._graphs[key] = cached
        return cached

    # --- rebinding ------------------------------------------------------

    def rebound(self, popcon: Optional[PopularityContest],
                repository: Optional[Repository]) -> "Dataset":
        """A Dataset over the same footprints with different popcon /
        repository, sharing every cache the change does not invalidate."""
        clone: Dataset = Dataset.__new__(Dataset)
        clone._footprints = self._footprints
        clone.packages = self.packages
        clone.package_index = self.package_index
        clone.space = self.space
        clone.bitsets = self.bitsets
        clone.popcon = popcon
        clone.repository = repository
        clone._masks = self._masks
        clone._bit_counts = self._bit_counts
        clone._universe_ids = self._universe_ids
        clone._users = self._users
        clone._usage = self._usage
        same_popcon = popcon is self.popcon
        clone._weights = self._weights if same_popcon else None
        clone._weight_by_name = (self._weight_by_name if same_popcon
                                 else None)
        clone._importance = self._importance if same_popcon else {}
        clone._graphs = (self._graphs
                         if repository is self.repository else {})
        return clone

    # --- stats ----------------------------------------------------------

    def stats(self) -> DatasetStats:
        from .dimensions import ALL_DIMENSIONS
        n_apis = {dim: self.space.size(dim) for dim in ALL_DIMENSIONS}
        n_nonempty = {
            dim: len(self.universe_ids(dim, ignore_empty=True))
            for dim in ALL_DIMENSIONS}
        total_weight = (sum(self.weights)
                        if self.popcon is not None else None)
        n_edges = 0
        n_virtual = 0
        n_provider_edges = 0
        n_alternative_groups = 0
        if self.repository is not None:
            n_edges = sum(len(package.depends)
                          for package in self.repository)
            n_virtual = len(self.repository.virtual_names())
            n_provider_edges = self.repository.n_provider_edges()
            n_alternative_groups = self.repository.n_alternative_groups()
        return DatasetStats(
            n_packages=len(self.packages),
            n_apis=n_apis,
            n_nonempty=n_nonempty,
            total_weight=total_weight,
            has_popcon=self.popcon is not None,
            has_repository=self.repository is not None,
            n_dependency_edges=n_edges,
            n_virtual_packages=n_virtual,
            n_provider_edges=n_provider_edges,
            n_alternative_groups=n_alternative_groups,
        )


FootprintsLike = Union[Mapping[str, Footprint], Dataset]


def as_dataset(footprints: FootprintsLike,
               popcon: Optional[PopularityContest] = None,
               repository: Optional[Repository] = None) -> Dataset:
    """Adapt any footprint mapping to a :class:`Dataset`.

    A Dataset passes through unchanged when the explicit popcon /
    repository arguments agree with (or defer to) its own; otherwise a
    rebound copy shares the interned state.  A plain mapping is
    interned on entry — this is the adapter shim that keeps every
    legacy ``Mapping[str, Footprint]`` signature working.
    """
    if isinstance(footprints, Dataset):
        dataset = footprints
        popcon_ok = popcon is None or popcon is dataset.popcon
        repo_ok = repository is None or repository is dataset.repository
        if popcon_ok and repo_ok:
            return dataset
        return dataset.rebound(
            dataset.popcon if popcon is None else popcon,
            dataset.repository if repository is None else repository)
    return Dataset(footprints, popcon=popcon, repository=repository)
