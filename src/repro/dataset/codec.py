"""Versioned JSON codec for interned datasets.

Persists exactly the state that is expensive to rebuild — the
per-dimension interner name tables and the per-package bitmasks — so a
warm engine run reconstructs a :class:`repro.dataset.Dataset` without
re-unioning, re-sorting, or re-hashing a single API name.  Masks are
hex strings (JSON has no big integers); interner name lists are stored
in id order, which :class:`repro.dataset.ApiInterner` guarantees is
sorted order, so an encode/decode round trip is exact.

Popcon and repository objects are runtime inputs, not part of the
payload — the engine rebinds them on load (:meth:`Dataset.rebound`
semantics).  ``unresolved_sites`` rides along per package so the
reconstructed source footprints compare equal to the originals.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Mapping, Optional, Tuple

from ..analysis.footprint import Footprint
from ..packages.popcon import PopularityContest
from ..packages.repository import Repository
from .bitset import BitsetFootprint
from .core import ApiSpace, Dataset
from .dimensions import DIMENSION_ORDER, FOOTPRINT_FIELDS
from .interner import ApiInterner

#: Version of the dataset payload layout.  Bump on incompatible change;
#: stale payloads are rejected and the caller re-interns from source.
DATASET_CODEC_VERSION = "1"


class DatasetCodecError(ValueError):
    """Raised when a dataset payload is malformed or stale."""


def dataset_to_dict(dataset: Dataset) -> Dict[str, Any]:
    """Encode the interned state of ``dataset`` (not popcon/repo)."""
    return {
        "dataset_codec_version": DATASET_CODEC_VERSION,
        "interners": {
            dim: list(dataset.space.interner(dim).names)
            for dim in DIMENSION_ORDER},
        "packages": list(dataset.packages),
        "masks": [[format(mask, "x") for mask in bits.masks]
                  for bits in dataset.bitsets],
        "unresolved_sites": [fp.unresolved_sites
                             for fp in dataset.values()],
    }


def dataset_from_dict(payload: Dict[str, Any],
                      popcon: Optional[PopularityContest] = None,
                      repository: Optional[Repository] = None,
                      ) -> Dataset:
    """Rebuild a :class:`Dataset` without re-interning anything."""
    if not isinstance(payload, dict):
        raise DatasetCodecError("dataset: expected an object")
    version = payload.get("dataset_codec_version")
    if version != DATASET_CODEC_VERSION:
        raise DatasetCodecError(
            f"dataset: codec version {version!r} "
            f"!= {DATASET_CODEC_VERSION!r}")
    try:
        interners = payload["interners"]
        packages = payload["packages"]
        mask_rows = payload["masks"]
        unresolved = payload.get("unresolved_sites",
                                 [0] * len(packages))
        space = ApiSpace({
            dim: ApiInterner(interners.get(dim, ()))
            for dim in DIMENSION_ORDER})
        bitsets = [BitsetFootprint(int(mask, 16) for mask in row)
                   for row in mask_rows]
    except (KeyError, TypeError, ValueError) as exc:
        raise DatasetCodecError(f"dataset: malformed payload "
                                f"({exc})") from None
    if not (len(packages) == len(bitsets) == len(unresolved)):
        raise DatasetCodecError("dataset: package/mask row mismatch")
    footprints: Dict[str, Footprint] = {}
    for name, bits, sites in zip(packages, bitsets, unresolved):
        fields = {
            FOOTPRINT_FIELDS[dim]: frozenset(
                space.interner(dim).names_of(bits.mask(dim)))
            for dim in DIMENSION_ORDER}
        footprints[name] = Footprint(unresolved_sites=int(sites),
                                     **fields)
    return Dataset(footprints, popcon=popcon, repository=repository,
                   space=space, bitsets=bitsets)


def dataset_to_json(dataset: Dataset) -> str:
    return json.dumps(dataset_to_dict(dataset), sort_keys=True,
                      separators=(",", ":"))


def dataset_from_json(text: str,
                      popcon: Optional[PopularityContest] = None,
                      repository: Optional[Repository] = None,
                      ) -> Dataset:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DatasetCodecError(
            f"dataset: invalid JSON ({exc})") from None
    return dataset_from_dict(payload, popcon=popcon,
                             repository=repository)


def footprints_fingerprint(
        footprints: Mapping[str, Footprint]) -> str:
    """Content address of a footprint mapping (cache key).

    Stable across processes: packages and API names are emitted
    sorted, so any mapping with the same contents — regardless of
    insertion or hash order — fingerprints identically.
    """
    digest = hashlib.sha256()
    digest.update(DATASET_CODEC_VERSION.encode())
    # Dimension blobs are memoized per frozenset object: synthetic and
    # paper-scale corpora share footprint sets across thousands of
    # packages, and hashing 30k packages one API name at a time is the
    # dominant cost of snapshot writes.  The cache holds the set
    # itself, pinning its id() for the duration of the call.
    blob_cache: Dict[int, Tuple[frozenset, bytes]] = {}
    for name in sorted(footprints):
        footprint = footprints[name]
        parts = [b"\x00", name.encode()]
        for dim in DIMENSION_ORDER:
            apis = getattr(footprint, FOOTPRINT_FIELDS[dim])
            cached = blob_cache.get(id(apis))
            if cached is None:
                blob = b"\x01" + b"".join(
                    api.encode() + b"\x02" for api in sorted(apis))
                blob_cache[id(apis)] = (apis, blob)
            else:
                blob = cached[1]
            parts.append(blob)
        parts.append(str(footprint.unresolved_sites).encode())
        digest.update(b"".join(parts))
    return digest.hexdigest()
