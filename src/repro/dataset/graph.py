"""SCC-condensed dependency graph for incremental support tracking.

:func:`repro.metrics.completeness.close_over_dependencies` computes
the *greatest* fixed point of "supported and all dependencies
supported" — a dependency cycle whose members are all satisfied stays
supported.  A naive additive worklist computes the *least* fixed
point, which wrongly drops such cycles.  Condensing the dependency
graph into strongly connected components first makes the two
coincide: on a DAG, a component is supported exactly when every member
is directly satisfied, no member depends on a package that can never
be supported, and every successor component is supported.

This used to live inside ``repro.metrics.ranking._SupportTracker``,
rebuilt (Tarjan included) on every curve evaluation.  It is split
here into the immutable :class:`CondensedDependencyGraph` — which the
:class:`repro.dataset.Dataset` facade caches per (dimension,
universe) — and the cheap mutable :class:`SupportTracker` state that
each curve run spawns from it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set


class CondensedDependencyGraph:
    """Immutable condensation of the dependency graph over a universe.

    ``universe`` is the measured package set (iteration order is
    preserved — it determines member order inside components, which
    downstream float summations depend on).  ``assumed`` names
    packages outside the measurement universe (e.g. footprint-less
    library packages) whose presence in a dependency list never
    invalidates a dependent.
    """

    __slots__ = ("component_of", "members", "initial_unsatisfied",
                 "poisoned", "dependents", "initial_unmet")

    def __init__(self, universe: Iterable[str], repository,
                 assumed: Iterable[str]) -> None:
        nodes = list(universe)
        node_set = set(nodes)
        assumed_set = set(assumed)
        adjacency: Dict[str, List[str]] = {name: [] for name in nodes}
        poisoned_nodes: Set[str] = set()
        for name in nodes:
            if name not in repository:
                # No dependency metadata: never invalidated (mirrors
                # close_over_dependencies skipping unknown packages).
                continue
            for dep in repository.get(name).depends:
                if dep == name:
                    continue
                if dep not in repository or dep in assumed_set:
                    # close_over_dependencies only invalidates on deps
                    # that are present in the repository and not
                    # assumed supported — even a dep with its own
                    # footprint never gates its dependents when the
                    # repository lacks it.
                    continue
                if dep in node_set:
                    adjacency[name].append(dep)
                else:
                    # Depends on a measured-universe outsider that is
                    # neither assumed supported nor absent: the closure
                    # can never keep this package.
                    poisoned_nodes.add(name)

        component_of = self._condense(nodes, adjacency)
        n_components = max(component_of.values()) + 1 if nodes else 0
        self.component_of = component_of
        self.members: List[List[str]] = [[] for _ in range(n_components)]
        for name in nodes:
            self.members[component_of[name]].append(name)
        self.initial_unsatisfied = [len(members)
                                    for members in self.members]
        self.poisoned = [False] * n_components
        for name in poisoned_nodes:
            self.poisoned[component_of[name]] = True
        dependents: List[set] = [set() for _ in range(n_components)]
        unmet: List[set] = [set() for _ in range(n_components)]
        for name in nodes:
            comp = component_of[name]
            for dep in adjacency[name]:
                dep_comp = component_of[dep]
                if dep_comp != comp:
                    unmet[comp].add(dep_comp)
                    dependents[dep_comp].add(comp)
        self.initial_unmet = [len(deps) for deps in unmet]
        self.dependents = [sorted(deps) for deps in dependents]

    @staticmethod
    def _condense(nodes, adjacency) -> Dict[str, int]:
        """Iterative Tarjan SCC; returns node -> component id."""
        index_of: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack = set()
        stack: List[str] = []
        component_of: Dict[str, int] = {}
        counter = [0]
        components = [0]

        for root in nodes:
            if root in index_of:
                continue
            work = [(root, iter(adjacency[root]))]
            index_of[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, edges = work[-1]
                advanced = False
                for dep in edges:
                    if dep not in index_of:
                        index_of[dep] = lowlink[dep] = counter[0]
                        counter[0] += 1
                        stack.append(dep)
                        on_stack.add(dep)
                        work.append((dep, iter(adjacency[dep])))
                        advanced = True
                        break
                    if dep in on_stack:
                        lowlink[node] = min(lowlink[node],
                                            index_of[dep])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent],
                                          lowlink[node])
                if lowlink[node] == index_of[node]:
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component_of[member] = components[0]
                        if member == node:
                            break
                    components[0] += 1
        return component_of

    def tracker(self) -> "SupportTracker":
        """Fresh mutable support state over this condensation."""
        return SupportTracker(self)


class SupportTracker:
    """Incremental dependency closure over a condensation DAG.

    Packages flip to supported monotonically as APIs are added, so one
    run over a ranked API list costs O(edges) total instead of
    re-running the dependency fixed point at every rank.
    """

    __slots__ = ("_graph", "_component_of", "_members", "_unsatisfied",
                 "_poisoned", "_dependents", "_unmet_deps", "_supported")

    def __init__(self, graph: CondensedDependencyGraph) -> None:
        self._graph = graph
        self._component_of = graph.component_of
        self._members = graph.members
        self._unsatisfied = list(graph.initial_unsatisfied)
        self._poisoned = graph.poisoned
        self._dependents = graph.dependents
        self._unmet_deps = list(graph.initial_unmet)
        self._supported = [False] * len(graph.members)

    def mark_satisfied(self, package: str) -> List[str]:
        """One package's own footprint is now covered.

        Returns every package that *became supported* as a result —
        the package's component if it just completed, plus any
        dependent components cascading to supported.
        """
        comp = self._component_of[package]
        self._unsatisfied[comp] -= 1
        newly: List[str] = []
        worklist = [comp]
        while worklist:
            candidate = worklist.pop()
            if (self._supported[candidate]
                    or self._unsatisfied[candidate] > 0
                    or self._unmet_deps[candidate] > 0
                    or self._poisoned[candidate]):
                continue
            self._supported[candidate] = True
            newly.extend(self._members[candidate])
            for dependent in self._dependents[candidate]:
                self._unmet_deps[dependent] -= 1
                worklist.append(dependent)
        return newly
