"""SCC-condensed AND-OR dependency graph for incremental support tracking.

:func:`repro.metrics.completeness.close_over_dependencies` computes
the *greatest* fixed point of "supported and every dependency group
satisfiable" — a dependency cycle whose members are all satisfied stays
supported.  A naive additive worklist computes the *least* fixed
point, which wrongly drops such cycles.  Condensing the must-edge
graph into strongly connected components first makes the two coincide
for plain AND dependencies: on a DAG, a component is supported exactly
when every member is directly satisfied, no member depends on a
package that can never be supported, and every successor component is
supported.

Dependency semantics are AND-of-OR with virtual providers.  Each
``Depends:`` group resolves, per node, to the set of in-universe
*satisfier* nodes (the real alternative packages plus providers of
virtual alternatives):

* a group with an unknown, unprovided alternative never gates (the
  closure's legacy tolerance of dangling virtual references);
* a group satisfied by the node itself, or by an *assumed* package
  (outside the measurement universe), never gates;
* a group with satisfiers in the repository but none reachable inside
  the universe poisons the node — it can never be supported;
* exactly one in-universe satisfier degenerates to a **must-edge**
  (exactly the pre-refactor AND edge, so flat corpora condense
  bit-identically);
* two or more satisfiers form an **OR-group** tracked as a residual
  counter: the group is met once *some* satisfier's component is
  supported.

OR-groups reintroduce the least/greatest fixed point gap that SCC
condensation solved for must-edges: components that satisfy each
other's OR-groups in a cycle never fire under forward counter
propagation.  The tracker therefore precomputes *super-components*
(SCCs of the component-level must+OR digraph) and, whenever counters
inside a cyclic super-component move, runs a local greatest-fixed-point
rescue that supports any mutually-consistent residue at once.  Flat
corpora have no OR edges, so every super-component is a singleton and
the rescue machinery never engages.

This used to live inside ``repro.metrics.ranking._SupportTracker``,
rebuilt (Tarjan included) on every curve evaluation.  It is split
here into the immutable :class:`CondensedDependencyGraph` — which the
:class:`repro.dataset.Dataset` facade caches per (dimension,
universe) — and the cheap mutable :class:`SupportTracker` state that
each curve run spawns from it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple


class CondensedDependencyGraph:
    """Immutable condensation of the dependency graph over a universe.

    ``universe`` is the measured package set (iteration order is
    preserved — it determines member order inside components, which
    downstream float summations depend on).  ``assumed`` names
    packages outside the measurement universe (e.g. footprint-less
    library packages) whose presence in a dependency list never
    invalidates a dependent.
    """

    __slots__ = ("component_of", "members", "initial_unsatisfied",
                 "poisoned", "dependents", "initial_unmet",
                 "or_group_owner", "or_group_satisfiers",
                 "groups_owned", "groups_of_satisfier",
                 "initial_unmet_groups", "must_deps",
                 "cyclic_super_of", "super_members")

    def __init__(self, universe: Iterable[str], repository,
                 assumed: Iterable[str]) -> None:
        nodes = list(universe)
        node_set = set(nodes)
        assumed_set = set(assumed)
        adjacency: Dict[str, List[str]] = {name: [] for name in nodes}
        poisoned_nodes: Set[str] = set()
        # Groups with >= 2 in-universe satisfiers: (owner, satisfiers).
        raw_or_groups: List[Tuple[str, Tuple[str, ...]]] = []
        for name in nodes:
            if name not in repository:
                # No dependency metadata: never invalidated (mirrors
                # close_over_dependencies skipping unknown packages).
                continue
            for group in repository.dependency_groups_of(name):
                resolved: List[str] = []
                resolved_seen: Set[str] = set()
                gates = True
                for alternative in group:
                    satisfiers = repository.satisfiers(alternative)
                    if not satisfiers:
                        # An unknown, unprovided alternative satisfies
                        # the whole group — close_over_dependencies
                        # only invalidates on targets present in the
                        # repository.
                        gates = False
                        break
                    for satisfier in satisfiers:
                        if satisfier == name or satisfier in assumed_set:
                            # Self-satisfying groups are consistent
                            # under the greatest fixed point; assumed
                            # packages are supported by fiat.
                            gates = False
                            break
                        if (satisfier in node_set
                                and satisfier not in resolved_seen):
                            resolved_seen.add(satisfier)
                            resolved.append(satisfier)
                        # In the repository but outside the universe
                        # and not assumed: can never be supported, so
                        # it cannot satisfy the group — drop it.
                    if not gates:
                        break
                if not gates:
                    continue
                if not resolved:
                    # Every satisfier is a measured-universe outsider
                    # that is neither assumed supported nor absent:
                    # the closure can never keep this package.
                    poisoned_nodes.add(name)
                elif len(resolved) == 1:
                    adjacency[name].append(resolved[0])
                else:
                    raw_or_groups.append((name, tuple(resolved)))

        component_of = self._condense(nodes, adjacency)
        n_components = max(component_of.values()) + 1 if nodes else 0
        self.component_of = component_of
        self.members: List[List[str]] = [[] for _ in range(n_components)]
        for name in nodes:
            self.members[component_of[name]].append(name)
        self.initial_unsatisfied = [len(members)
                                    for members in self.members]
        self.poisoned = [False] * n_components
        for name in poisoned_nodes:
            self.poisoned[component_of[name]] = True
        dependents: List[set] = [set() for _ in range(n_components)]
        unmet: List[set] = [set() for _ in range(n_components)]
        for name in nodes:
            comp = component_of[name]
            for dep in adjacency[name]:
                dep_comp = component_of[dep]
                if dep_comp != comp:
                    unmet[comp].add(dep_comp)
                    dependents[dep_comp].add(comp)
        self.initial_unmet = [len(deps) for deps in unmet]
        self.dependents = [sorted(deps) for deps in dependents]
        self.must_deps = [sorted(deps) for deps in unmet]

        # --- OR-groups at component level --------------------------------
        self.or_group_owner: List[int] = []
        self.or_group_satisfiers: List[Tuple[int, ...]] = []
        self.groups_owned: List[List[int]] = [[] for _ in
                                              range(n_components)]
        self.groups_of_satisfier: List[List[int]] = [
            [] for _ in range(n_components)]
        for name, satisfiers in raw_or_groups:
            owner = component_of[name]
            comps: List[int] = []
            comps_seen: Set[int] = set()
            satisfied_within = False
            for satisfier in satisfiers:
                comp = component_of[satisfier]
                if comp == owner:
                    # A satisfier inside the owner's own SCC: under the
                    # greatest fixed point the group is satisfied
                    # whenever the component is, so it never
                    # independently blocks — drop the constraint.
                    satisfied_within = True
                    break
                if comp not in comps_seen:
                    comps_seen.add(comp)
                    comps.append(comp)
            if satisfied_within:
                continue
            gid = len(self.or_group_owner)
            self.or_group_owner.append(owner)
            self.or_group_satisfiers.append(tuple(comps))
            self.groups_owned[owner].append(gid)
            for comp in comps:
                self.groups_of_satisfier[comp].append(gid)
        self.initial_unmet_groups = [len(gids)
                                     for gids in self.groups_owned]

        # --- super-components (SCCs over must+OR edges) -------------------
        # Only cyclic super-components matter: they are where forward
        # counter propagation (a least fixed point) can deadlock on
        # OR-cycles and the tracker must fall back to a local greatest
        # fixed point.  Flat corpora produce none (must-edges alone
        # form a DAG after condensation).
        self.cyclic_super_of: Dict[int, int] = {}
        self.super_members: Dict[int, List[int]] = {}
        if self.or_group_owner:
            comp_nodes = list(range(n_components))
            comp_adjacency: Dict[int, List[int]] = {
                comp: list(self.must_deps[comp]) for comp in comp_nodes}
            for gid, owner in enumerate(self.or_group_owner):
                comp_adjacency[owner].extend(
                    self.or_group_satisfiers[gid])
            super_of = self._condense(comp_nodes, comp_adjacency)
            members: Dict[int, List[int]] = {}
            for comp in comp_nodes:
                members.setdefault(super_of[comp], []).append(comp)
            for super_id, comps in members.items():
                if len(comps) > 1:
                    self.super_members[super_id] = sorted(comps)
                    for comp in comps:
                        self.cyclic_super_of[comp] = super_id

    @staticmethod
    def _condense(nodes, adjacency) -> Dict:
        """Iterative Tarjan SCC; returns node -> component id."""
        index_of: Dict = {}
        lowlink: Dict = {}
        on_stack = set()
        stack: List = []
        component_of: Dict = {}
        counter = [0]
        components = [0]

        for root in nodes:
            if root in index_of:
                continue
            work = [(root, iter(adjacency[root]))]
            index_of[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, edges = work[-1]
                advanced = False
                for dep in edges:
                    if dep not in index_of:
                        index_of[dep] = lowlink[dep] = counter[0]
                        counter[0] += 1
                        stack.append(dep)
                        on_stack.add(dep)
                        work.append((dep, iter(adjacency[dep])))
                        advanced = True
                        break
                    if dep in on_stack:
                        lowlink[node] = min(lowlink[node],
                                            index_of[dep])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent],
                                          lowlink[node])
                if lowlink[node] == index_of[node]:
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component_of[member] = components[0]
                        if member == node:
                            break
                    components[0] += 1
        return component_of

    def tracker(self) -> "SupportTracker":
        """Fresh mutable support state over this condensation."""
        return SupportTracker(self)


class SupportTracker:
    """Incremental dependency closure over a condensation DAG.

    Packages flip to supported monotonically as APIs are added, so one
    run over a ranked API list costs O(edges) total instead of
    re-running the dependency fixed point at every rank.  OR-groups
    are residual counters; OR-cycles are resolved by a local greatest
    fixed point over their super-component (see module docstring).
    """

    __slots__ = ("_graph", "_component_of", "_members", "_unsatisfied",
                 "_poisoned", "_dependents", "_unmet_deps", "_supported",
                 "_unmet_groups", "_group_satisfied", "_group_owner",
                 "_groups_of_satisfier", "_groups_owned", "_must_deps",
                 "_group_satisfiers", "_cyclic_super_of",
                 "_super_members", "_dirty")

    def __init__(self, graph: CondensedDependencyGraph) -> None:
        self._graph = graph
        self._component_of = graph.component_of
        self._members = graph.members
        self._unsatisfied = list(graph.initial_unsatisfied)
        self._poisoned = graph.poisoned
        self._dependents = graph.dependents
        self._unmet_deps = list(graph.initial_unmet)
        self._supported = [False] * len(graph.members)
        self._unmet_groups = list(graph.initial_unmet_groups)
        self._group_satisfied = [False] * len(graph.or_group_owner)
        self._group_owner = graph.or_group_owner
        self._group_satisfiers = graph.or_group_satisfiers
        self._groups_of_satisfier = graph.groups_of_satisfier
        self._groups_owned = graph.groups_owned
        self._must_deps = graph.must_deps
        self._cyclic_super_of = graph.cyclic_super_of
        self._super_members = graph.super_members
        self._dirty: Set[int] = set()

    def mark_satisfied(self, package: str) -> List[str]:
        """One package's own footprint is now covered.

        Returns every package that *became supported* as a result —
        the package's component if it just completed, plus any
        dependent components cascading to supported, plus any OR-cycle
        residue the rescue pass resolves.
        """
        comp = self._component_of[package]
        self._unsatisfied[comp] -= 1
        self._note_dirty(comp)
        newly: List[str] = []
        worklist = [comp]
        while True:
            while worklist:
                candidate = worklist.pop()
                if (self._supported[candidate]
                        or self._unsatisfied[candidate] > 0
                        or self._unmet_deps[candidate] > 0
                        or self._unmet_groups[candidate] > 0
                        or self._poisoned[candidate]):
                    continue
                self._support(candidate, newly, worklist)
            if not self._dirty:
                break
            rescued = self._rescue()
            if not rescued:
                break
            for candidate in rescued:
                if not self._supported[candidate]:
                    self._support(candidate, newly, worklist)
        return newly

    def _support(self, candidate: int, newly: List[str],
                 worklist: List[int]) -> None:
        """Flip one component to supported and propagate counters."""
        self._supported[candidate] = True
        newly.extend(self._members[candidate])
        for dependent in self._dependents[candidate]:
            self._unmet_deps[dependent] -= 1
            self._note_dirty(dependent)
            worklist.append(dependent)
        for gid in self._groups_of_satisfier[candidate]:
            if self._group_satisfied[gid]:
                continue
            self._group_satisfied[gid] = True
            owner = self._group_owner[gid]
            self._unmet_groups[owner] -= 1
            self._note_dirty(owner)
            worklist.append(owner)

    def _note_dirty(self, comp: int) -> None:
        super_id = self._cyclic_super_of.get(comp)
        if super_id is not None:
            self._dirty.add(super_id)

    def _rescue(self) -> List[int]:
        """Local greatest fixed point over dirty cyclic supers.

        A set X of components inside one super-component may be
        supported together exactly when every member has all its own
        footprints satisfied and each of its constraints (must-edge or
        OR-group) is met by a component that is already supported or
        also in X.  Forward counter propagation cannot discover such
        mutually-dependent sets; iterated removal from the candidate
        set computes the maximal one.
        """
        rescued: List[int] = []
        for super_id in sorted(self._dirty):
            candidates = {
                comp for comp in self._super_members[super_id]
                if not self._supported[comp]
                and not self._poisoned[comp]
                and self._unsatisfied[comp] == 0}
            changed = True
            while changed and candidates:
                changed = False
                for comp in sorted(candidates):
                    consistent = all(
                        self._supported[dep] or dep in candidates
                        for dep in self._must_deps[comp])
                    if consistent:
                        for gid in self._groups_owned[comp]:
                            if self._group_satisfied[gid]:
                                continue
                            if not any(self._supported[satisfier]
                                       or satisfier in candidates
                                       for satisfier in
                                       self._group_satisfiers[gid]):
                                consistent = False
                                break
                    if not consistent:
                        candidates.discard(comp)
                        changed = True
            rescued.extend(sorted(candidates))
        self._dirty.clear()
        return rescued
