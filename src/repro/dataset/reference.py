"""Frozen pre-refactor metric implementations (equivalence oracle).

Verbatim copies of the set-based metric code as it stood before the
bitset substrate landed, kept as the ground truth that
``tests/test_dataset_equivalence.py`` and
``benchmarks/test_dataset_speed.py`` compare against.  Nothing in the
production code path imports this module.

Do not "improve" these functions: their value is being exactly the old
behaviour, float-operation order included.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set

from ..analysis.footprint import Footprint
from ..packages.popcon import PopularityContest
from ..packages.repository import Repository
from .dimensions import DIMENSIONS

# ---------------------------------------------------------------------------
# importance (was repro.metrics.importance)
# ---------------------------------------------------------------------------


def dependents_index(footprints: Mapping[str, Footprint],
                     dimension: str = "syscall",
                     ) -> Dict[str, List[str]]:
    """api -> packages whose footprint includes it."""
    select = DIMENSIONS[dimension]
    index: Dict[str, List[str]] = {}
    for package, footprint in footprints.items():
        for api in select(footprint):
            index.setdefault(api, []).append(package)
    return index


def importance_of_packages(packages: Iterable[str],
                           popcon: PopularityContest) -> float:
    probability_none = 1.0
    for package in packages:
        probability_none *= 1.0 - popcon.install_probability(package)
    return 1.0 - probability_none


def importance_table(footprints: Mapping[str, Footprint],
                     popcon: PopularityContest,
                     dimension: str = "syscall",
                     universe: Iterable[str] = (),
                     ) -> Dict[str, float]:
    index = dependents_index(footprints, dimension)
    table = {api: importance_of_packages(users, popcon)
             for api, users in index.items()}
    for api in universe:
        table.setdefault(api, 0.0)
    return table


def unweighted_importance_table(footprints: Mapping[str, Footprint],
                                dimension: str = "syscall",
                                universe: Iterable[str] = (),
                                ) -> Dict[str, float]:
    total = len(footprints)
    if total == 0:
        return {api: 0.0 for api in universe}
    index = dependents_index(footprints, dimension)
    table = {api: len(users) / total for api, users in index.items()}
    for api in universe:
        table.setdefault(api, 0.0)
    return table


# ---------------------------------------------------------------------------
# completeness (was repro.metrics.completeness)
# ---------------------------------------------------------------------------


def directly_supported(footprints: Mapping[str, Footprint],
                       supported_apis: FrozenSet[str],
                       dimension: str = "syscall",
                       ) -> Set[str]:
    select = DIMENSIONS[dimension]
    return {package for package, footprint in footprints.items()
            if select(footprint) <= supported_apis}


def close_over_dependencies(supported: Set[str],
                            repository: Repository,
                            assume_supported: Optional[Set[str]] = None,
                            ) -> Set[str]:
    result = set(supported)
    assumed = assume_supported or set()
    changed = True
    while changed:
        changed = False
        for name in list(result):
            if name not in repository:
                continue
            package = repository.get(name)
            for dep in package.depends:
                if (dep in repository and dep not in result
                        and dep not in assumed):
                    result.discard(name)
                    changed = True
                    break
    return result


def weighted_completeness(supported_apis: Iterable[str],
                          footprints: Mapping[str, Footprint],
                          popcon: PopularityContest,
                          repository: Optional[Repository] = None,
                          dimension: str = "syscall",
                          ignore_empty: bool = True) -> float:
    select = DIMENSIONS[dimension]
    universe = {pkg: fp for pkg, fp in footprints.items()
                if not ignore_empty or select(fp)}
    supported_set = frozenset(supported_apis)
    supported = directly_supported(universe, supported_set, dimension)
    if repository is not None:
        trivially = {pkg for pkg in footprints if pkg not in universe}
        supported = close_over_dependencies(supported, repository,
                                            assume_supported=trivially)
    numerator = sum(popcon.install_probability(pkg)
                    for pkg in supported)
    denominator = sum(popcon.install_probability(pkg)
                      for pkg in universe)
    return numerator / denominator if denominator else 0.0


def missing_apis_report(supported_apis: Iterable[str],
                        footprints: Mapping[str, Footprint],
                        popcon: PopularityContest,
                        dimension: str = "syscall",
                        limit: int = 10,
                        ) -> List[tuple]:
    select = DIMENSIONS[dimension]
    supported_set = frozenset(supported_apis)
    blocked_weight: Dict[str, float] = {}
    for package, footprint in footprints.items():
        missing = select(footprint) - supported_set
        if not missing:
            continue
        weight = popcon.install_probability(package)
        for api in missing:
            blocked_weight[api] = blocked_weight.get(api, 0.0) + weight
    ranked = sorted(blocked_weight.items(),
                    key=lambda item: (-item[1], item[0]))
    return ranked[:limit]


# ---------------------------------------------------------------------------
# ranking (was repro.metrics.ranking, _SupportTracker rebuilt per call)
# ---------------------------------------------------------------------------


class _SupportTracker:
    """The pre-refactor tracker: condensation rebuilt on every call."""

    def __init__(self, universe, repository: Repository,
                 assumed) -> None:
        nodes = list(universe)
        node_set = set(nodes)
        adjacency: Dict[str, List[str]] = {name: [] for name in nodes}
        poisoned_nodes = set()
        for name in nodes:
            if name not in repository:
                continue
            for dep in repository.get(name).depends:
                if dep == name:
                    continue
                if dep not in repository or dep in assumed:
                    continue
                if dep in node_set:
                    adjacency[name].append(dep)
                else:
                    poisoned_nodes.add(name)

        component_of = self._condense(nodes, adjacency)
        n_components = max(component_of.values()) + 1 if nodes else 0
        self._component_of = component_of
        self._members: List[List[str]] = [[] for _ in range(n_components)]
        for name in nodes:
            self._members[component_of[name]].append(name)
        self._unsatisfied = [len(members) for members in self._members]
        self._poisoned = [False] * n_components
        for name in poisoned_nodes:
            self._poisoned[component_of[name]] = True
        dependents: List[set] = [set() for _ in range(n_components)]
        unmet = [set() for _ in range(n_components)]
        for name in nodes:
            comp = component_of[name]
            for dep in adjacency[name]:
                dep_comp = component_of[dep]
                if dep_comp != comp:
                    unmet[comp].add(dep_comp)
                    dependents[dep_comp].add(comp)
        self._unmet_deps = [len(deps) for deps in unmet]
        self._dependents = [sorted(deps) for deps in dependents]
        self._supported = [False] * n_components

    @staticmethod
    def _condense(nodes, adjacency) -> Dict[str, int]:
        index_of: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack = set()
        stack: List[str] = []
        component_of: Dict[str, int] = {}
        counter = [0]
        components = [0]

        for root in nodes:
            if root in index_of:
                continue
            work = [(root, iter(adjacency[root]))]
            index_of[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, edges = work[-1]
                advanced = False
                for dep in edges:
                    if dep not in index_of:
                        index_of[dep] = lowlink[dep] = counter[0]
                        counter[0] += 1
                        stack.append(dep)
                        on_stack.add(dep)
                        work.append((dep, iter(adjacency[dep])))
                        advanced = True
                        break
                    if dep in on_stack:
                        lowlink[node] = min(lowlink[node],
                                            index_of[dep])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent],
                                          lowlink[node])
                if lowlink[node] == index_of[node]:
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component_of[member] = components[0]
                        if member == node:
                            break
                    components[0] += 1
        return component_of

    def mark_satisfied(self, package: str) -> List[str]:
        comp = self._component_of[package]
        self._unsatisfied[comp] -= 1
        newly: List[str] = []
        worklist = [comp]
        while worklist:
            candidate = worklist.pop()
            if (self._supported[candidate]
                    or self._unsatisfied[candidate] > 0
                    or self._unmet_deps[candidate] > 0
                    or self._poisoned[candidate]):
                continue
            self._supported[candidate] = True
            newly.extend(self._members[candidate])
            for dependent in self._dependents[candidate]:
                self._unmet_deps[dependent] -= 1
                worklist.append(dependent)
        return newly


def completeness_curve(footprints: Mapping[str, Footprint],
                       popcon: PopularityContest,
                       repository: Optional[Repository] = None,
                       dimension: str = "syscall",
                       importance: Optional[Mapping[str, float]] = None,
                       ignore_empty: bool = True,
                       ) -> list:
    """The legacy curve: string-keyed sets, tracker rebuilt per call.

    Returns the same :class:`repro.metrics.ranking.CurvePoint` records
    as the production path, so curves compare directly.
    """
    from ..metrics.ranking import CurvePoint
    select = DIMENSIONS[dimension]
    trivially_supported = {pkg for pkg, fp in footprints.items()
                           if not select(fp)}
    if ignore_empty:
        footprints = {pkg: fp for pkg, fp in footprints.items()
                      if select(fp)}
    if importance is None:
        importance = importance_table(footprints, popcon, dimension)
    usage = unweighted_importance_table(footprints, dimension)
    order = sorted(importance,
                   key=lambda api: (-importance[api],
                                    -usage.get(api, 0.0), api))

    requirement_count: Dict[str, int] = {}
    users: Dict[str, List[str]] = {}
    for package, footprint in footprints.items():
        needs = select(footprint)
        requirement_count[package] = len(needs)
        for api in needs:
            users.setdefault(api, []).append(package)

    total_weight = sum(popcon.install_probability(p) for p in footprints)
    if total_weight == 0:
        return []

    tracker = (None if repository is None else _SupportTracker(
        footprints, repository, trivially_supported))

    supported_weight = 0.0

    def note_satisfied(package: str) -> float:
        if tracker is None:
            return popcon.install_probability(package)
        return sum(popcon.install_probability(p)
                   for p in tracker.mark_satisfied(package))

    for package, count in requirement_count.items():
        if count == 0:
            supported_weight += note_satisfied(package)
    curve = []
    for rank, api in enumerate(order, start=1):
        for package in users.get(api, ()):
            requirement_count[package] -= 1
            if requirement_count[package] == 0:
                supported_weight += note_satisfied(package)
        curve.append(CurvePoint(
            rank, api, supported_weight / total_weight))
    return curve


# ---------------------------------------------------------------------------
# AND-OR oracle (added with the dependency-semantics refactor)
# ---------------------------------------------------------------------------
# Everything above this line is the frozen pre-refactor code.  The
# functions below extend the oracle to AND-of-OR groups and Provides:
# virtual packages so equivalence testing survives the refactor.  They
# are written as a deliberately naive, independent implementation — no
# caching, no condensation, fresh parsing per call — so that agreement
# with the production tracker is evidence of semantic correctness, not
# of shared code.  On repositories without alternatives or virtuals
# they reduce to exactly the frozen functions above (same set
# histories, so float sums stay bit-identical).


def _andor_groups(package) -> List[tuple]:
    groups = []
    for dep in package.depends:
        alternatives = tuple(part.strip() for part in dep.split("|")
                             if part.strip())
        if alternatives:
            groups.append(alternatives)
    return groups


def _andor_providers(repository: Repository) -> Dict[str, List[str]]:
    providers: Dict[str, List[str]] = {}
    for package in repository:
        for virtual in package.provides:
            providers.setdefault(virtual, []).append(package.name)
    return providers


def _andor_satisfiers(alternative: str, repository: Repository,
                      providers: Dict[str, List[str]]) -> List[str]:
    satisfiers: List[str] = []
    if alternative in repository:
        satisfiers.append(alternative)
    for provider in providers.get(alternative, ()):
        if provider not in satisfiers:
            satisfiers.append(provider)
    return satisfiers


def _andor_group_satisfied(group, repository, providers, result,
                           assumed) -> bool:
    for alternative in group:
        satisfiers = _andor_satisfiers(alternative, repository,
                                       providers)
        if not satisfiers:
            # Dangling virtual reference: never gates (matches the
            # frozen close_over_dependencies ignoring targets absent
            # from the repository).
            return True
        for satisfier in satisfiers:
            if satisfier in result or satisfier in assumed:
                return True
    return False


def andor_close_over_dependencies(supported: Set[str],
                                  repository: Repository,
                                  assume_supported: Optional[Set[str]]
                                  = None) -> Set[str]:
    """AND-OR greatest fixed point by naive iterated removal."""
    providers = _andor_providers(repository)
    result = set(supported)
    assumed = assume_supported or set()
    changed = True
    while changed:
        changed = False
        for name in list(result):
            if name not in repository:
                continue
            package = repository.get(name)
            for group in _andor_groups(package):
                if not _andor_group_satisfied(group, repository,
                                              providers, result,
                                              assumed):
                    result.discard(name)
                    changed = True
                    break
    return result


def andor_weighted_completeness(supported_apis: Iterable[str],
                                footprints: Mapping[str, Footprint],
                                popcon: PopularityContest,
                                repository: Optional[Repository] = None,
                                dimension: str = "syscall",
                                ignore_empty: bool = True) -> float:
    """Frozen-shape weighted completeness under AND-OR closure.

    Mirrors the frozen :func:`weighted_completeness` — same universe
    construction, same set copies, same summation order — with only
    the closure rule generalized.
    """
    select = DIMENSIONS[dimension]
    universe = {pkg: fp for pkg, fp in footprints.items()
                if not ignore_empty or select(fp)}
    supported_set = frozenset(supported_apis)
    supported = directly_supported(universe, supported_set, dimension)
    if repository is not None:
        trivially = {pkg for pkg in footprints if pkg not in universe}
        supported = andor_close_over_dependencies(
            supported, repository, assume_supported=trivially)
    numerator = sum(popcon.install_probability(pkg)
                    for pkg in supported)
    denominator = sum(popcon.install_probability(pkg)
                      for pkg in universe)
    return numerator / denominator if denominator else 0.0


def andor_supported_packages(supported_apis: Iterable[str],
                             footprints: Mapping[str, Footprint],
                             repository: Optional[Repository] = None,
                             dimension: str = "syscall") -> Set[str]:
    """AND-OR analogue of the production ``supported_packages``."""
    select = DIMENSIONS[dimension]
    supported_set = frozenset(supported_apis)
    supported = directly_supported(footprints, supported_set, dimension)
    if repository is not None:
        trivially = {pkg for pkg, fp in footprints.items()
                     if not select(fp)}
        supported = andor_close_over_dependencies(
            supported, repository, assume_supported=trivially)
    return supported
