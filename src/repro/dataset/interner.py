"""String-to-dense-id interning for API names.

An :class:`ApiInterner` assigns every API name in one dimension a
dense integer id in *stable sorted order*: id 0 is the
lexicographically first name.  Sorted order makes ids reproducible
across runs and machines for the same name set, which is what lets the
engine cache persist interned footprints (:mod:`repro.dataset.codec`).

A set of APIs then becomes a single Python ``int`` bitmask (bit *i*
set ⇔ API with id *i* present), and the set algebra every metric runs
on becomes machine-word arithmetic::

    union        a | b
    intersection a & b
    difference   a & ~b
    is-subset    a & ~b == 0
    cardinality  a.bit_count()
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple


def popcount(mask: int) -> int:
    """Number of set bits (= cardinality of the interned set)."""
    return mask.bit_count()


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class ApiInterner:
    """Immutable name ⇄ dense-id mapping for one API dimension."""

    __slots__ = ("_names", "_ids")

    def __init__(self, names: Iterable[str] = ()) -> None:
        self._names: Tuple[str, ...] = tuple(sorted(set(names)))
        self._ids: Dict[str, int] = {
            name: index for index, name in enumerate(self._names)}

    # --- introspection --------------------------------------------------

    @property
    def names(self) -> Tuple[str, ...]:
        """All interned names, in id (= sorted) order."""
        return self._names

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._ids

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ApiInterner)
                and self._names == other._names)

    def __hash__(self) -> int:
        return hash(self._names)

    def __repr__(self) -> str:
        return f"ApiInterner({len(self._names)} names)"

    # --- name <-> id ----------------------------------------------------

    def id_of(self, name: str) -> int:
        return self._ids[name]

    def name_of(self, api_id: int) -> str:
        return self._names[api_id]

    # --- set <-> mask ---------------------------------------------------

    @property
    def universe_mask(self) -> int:
        """Mask with every interned API set."""
        return (1 << len(self._names)) - 1

    def mask_of(self, names: Iterable[str], strict: bool = False) -> int:
        """Bitmask of ``names``.

        Unknown names are ignored by default: a *supported*-API set
        may legitimately name APIs no measured package uses, and those
        can never affect a subset/difference query against interned
        footprints.  ``strict=True`` raises on unknown names instead
        (used when interning footprints, where every name must be in
        the universe by construction).
        """
        mask = 0
        ids = self._ids
        if strict:
            for name in names:
                mask |= 1 << ids[name]
            return mask
        for name in names:
            api_id = ids.get(name)
            if api_id is not None:
                mask |= 1 << api_id
        return mask

    def names_of(self, mask: int) -> List[str]:
        """The names in ``mask``, in id (= sorted) order."""
        names = self._names
        return [names[bit] for bit in iter_bits(mask)]
