"""The API dimension registry.

A *dimension* is one axis of the measured API surface: system calls,
vectored opcodes (ioctl / fcntl / prctl), hard-coded pseudo-file
paths, or imported libc symbols.  Every metric query ranges over one
dimension (or ``"all"``, the namespaced union of every axis — §3.2:
"one can construct a similar path including other APIs, such as
vectored system calls, pseudo-files and library APIs").

This registry used to live in :mod:`repro.metrics.importance`, which
forced :mod:`repro.metrics.completeness` to re-import it lazily inside
every function to dodge an import cycle.  Hoisting it here — below
both the metrics layer and the dataset substrate — untangles that
graph: :mod:`repro.dataset` and every metrics module import it at the
top level.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Tuple

from ..analysis.footprint import Footprint

#: Canonical dimension order.  This is load-bearing for the bitset
#: substrate: :class:`repro.dataset.BitsetFootprint` stores one mask
#: per dimension in exactly this order, and the composed ``"all"``
#: space concatenates the per-dimension id ranges in this order.
DIMENSION_ORDER: Tuple[str, ...] = (
    "syscall", "ioctl", "fcntl", "prctl", "pseudofile", "libc")

#: The queryable dimensions: the six concrete axes plus ``"all"``.
ALL_DIMENSIONS: Tuple[str, ...] = DIMENSION_ORDER + ("all",)

#: Dimension -> :class:`Footprint` field holding its API set.
FOOTPRINT_FIELDS: Dict[str, str] = {
    "syscall": "syscalls",
    "ioctl": "ioctls",
    "fcntl": "fcntls",
    "prctl": "prctls",
    "pseudofile": "pseudo_files",
    "libc": "libc_symbols",
}

#: Namespacing prefix per dimension in the ``"all"`` space.  System
#: calls are unprefixed, matching the paper's tables.
NAMESPACE_PREFIXES: Dict[str, str] = {
    "syscall": "",
    "ioctl": "ioctl:",
    "fcntl": "fcntl:",
    "prctl": "prctl:",
    "pseudofile": "pseudofile:",
    "libc": "libc:",
}

# Selector: which footprint dimension a metric query ranges over.
DIMENSIONS: Dict[str, Callable[[Footprint], FrozenSet[str]]] = {
    "syscall": lambda fp: fp.syscalls,
    "ioctl": lambda fp: fp.ioctls,
    "fcntl": lambda fp: fp.fcntls,
    "prctl": lambda fp: fp.prctls,
    "pseudofile": lambda fp: fp.pseudo_files,
    "libc": lambda fp: fp.libc_symbols,
    "all": lambda fp: fp.api_set(),
}


def selector(dimension: str) -> Callable[[Footprint], FrozenSet[str]]:
    """The set selector for ``dimension`` (raises on unknown names)."""
    try:
        return DIMENSIONS[dimension]
    except KeyError:
        raise KeyError(f"unknown dimension {dimension!r}; expected one "
                       f"of {', '.join(ALL_DIMENSIONS)}") from None


def namespaced(dimension: str, name: str) -> str:
    """The ``"all"``-space identifier of one API."""
    return NAMESPACE_PREFIXES[dimension] + name


def split_namespaced(api: str) -> Tuple[str, str]:
    """Inverse of :func:`namespaced`: ``api`` -> (dimension, name)."""
    for dimension in DIMENSION_ORDER[1:]:
        prefix = NAMESPACE_PREFIXES[dimension]
        if api.startswith(prefix):
            return dimension, api[len(prefix):]
    return "syscall", api
