"""Exporters: JSON-lines trace files and Prometheus-style text.

Both formats carry an explicit schema version so any future change to
the shape is a deliberate, visible bump — the golden-file tests
compare exporter output byte for byte against checked-in references.

Trace format (one JSON object per line)::

    {"schema": "repro.trace", "version": 1, "kind": "header", ...}
    {"kind": "span", "name": ..., "span_id": ..., "parent_id": ...,
     "start": ..., "end": ..., "seconds": ..., "error": ...,
     "attrs": {...}}

Metrics format (Prometheus text exposition, summaries for
histograms)::

    # repro-metrics-schema: 1
    # TYPE repro_engine_cache_hits counter
    repro_engine_cache_hits 42
    repro_engine_analyze_task_seconds{quantile="0.5"} 0.002
    ...

Reading back: :func:`read_trace` and :func:`parse_metrics` invert the
writers, which is what makes round-trip golden tests possible.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .metrics import MetricsRegistry
from .span import Span

#: Bump when the trace line shape changes.
TRACE_SCHEMA = "repro.trace"
TRACE_SCHEMA_VERSION = 1

#: Bump when the metrics text shape changes.
METRICS_SCHEMA_VERSION = 1


# --- trace: spans -> JSON lines ----------------------------------------

def span_to_dict(span: Span) -> Dict[str, object]:
    return {
        "kind": "span",
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "start": span.start,
        "end": span.end,
        "seconds": span.seconds,
        "error": span.error,
        "attrs": dict(span.attrs),
    }


def validate_span_dict(data: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``data`` is a schema-valid span line."""
    if data.get("kind") != "span":
        raise ValueError(f"not a span line: kind={data.get('kind')!r}")
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError(f"span name must be a non-empty string: {name!r}")
    span_id = data.get("span_id")
    if not isinstance(span_id, int) or span_id < 1:
        raise ValueError(f"span_id must be a positive int: {span_id!r}")
    parent_id = data.get("parent_id")
    if parent_id is not None and not isinstance(parent_id, int):
        raise ValueError(f"parent_id must be an int or null: {parent_id!r}")
    for field in ("start", "end", "seconds"):
        value = data.get(field)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"{field} must be a number: {value!r}")
    if data["end"] < data["start"]:  # type: ignore[operator]
        raise ValueError("span ends before it starts")
    if not isinstance(data.get("error"), bool):
        raise ValueError(f"error must be a bool: {data.get('error')!r}")
    attrs = data.get("attrs")
    if not isinstance(attrs, dict) or any(
            not isinstance(key, str) for key in attrs):
        raise ValueError(f"attrs must be a string-keyed object: {attrs!r}")


def trace_to_lines(spans: Sequence[Span],
                   meta: Optional[Dict[str, object]] = None) -> List[str]:
    """Render a span batch as JSON lines (header first).

    Spans are ordered by ``(start, span_id)`` so output is stable for
    a fixed trace regardless of close/adoption order.
    """
    ordered = sorted(spans, key=lambda span: (span.start, span.span_id))
    header: Dict[str, object] = {
        "schema": TRACE_SCHEMA,
        "version": TRACE_SCHEMA_VERSION,
        "kind": "header",
        "spans": len(ordered),
    }
    header.update(meta or {})
    lines = [json.dumps(header, sort_keys=False)]
    lines.extend(json.dumps(span_to_dict(span), sort_keys=False)
                 for span in ordered)
    return lines


def write_trace(path, spans: Sequence[Span],
                meta: Optional[Dict[str, object]] = None) -> int:
    """Write the JSON-lines trace file; returns the span count."""
    text = "\n".join(trace_to_lines(spans, meta=meta)) + "\n"
    pathlib.Path(path).write_text(text, encoding="utf-8")
    return len(spans)


def read_trace(lines: Iterable[str],
               ) -> Tuple[Dict[str, object], List[Span]]:
    """Invert :func:`trace_to_lines`; validates every span line."""
    header: Optional[Dict[str, object]] = None
    spans: List[Span] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        data = json.loads(line)
        if data.get("kind") == "header":
            if data.get("schema") != TRACE_SCHEMA:
                raise ValueError(
                    f"not a {TRACE_SCHEMA} file: {data.get('schema')!r}")
            if data.get("version") != TRACE_SCHEMA_VERSION:
                raise ValueError(
                    f"unsupported trace schema version "
                    f"{data.get('version')!r}")
            header = data
            continue
        validate_span_dict(data)
        spans.append(Span(name=data["name"], span_id=data["span_id"],
                          parent_id=data["parent_id"],
                          start=data["start"], end=data["end"],
                          error=data["error"],
                          attrs=dict(data["attrs"])))
    if header is None:
        raise ValueError("trace file has no header line")
    return header, spans


def read_trace_file(path) -> Tuple[Dict[str, object], List[Span]]:
    text = pathlib.Path(path).read_text(encoding="utf-8")
    return read_trace(text.splitlines())


# --- metrics: registry -> Prometheus text ------------------------------

def _mangle(name: str) -> str:
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _number(value: float) -> str:
    if value != value:  # NaN: the exposition format spells it "NaN"
        return "NaN"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return format(value, ".10g")


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double-quote, and newline are the three characters the
    format reserves inside ``label="..."``; everything else passes
    through verbatim.  The escaping is the identity on every label the
    exporter has historically emitted (bare quantiles), which is what
    keeps the golden files byte-stable.
    """
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def format_sample(name: str, labels: "Dict[str, str]",
                  value: float) -> str:
    """One exposition sample line: ``name{k="v",...} value``.

    ``name`` must already be a valid (mangled) metric name; label
    values are escaped here, label *names* are trusted.  Label order
    is preserved as given — the format is order-sensitive for
    byte-stable output, not for semantics.
    """
    if labels:
        body = ",".join(
            f'{key}="{escape_label_value(str(label))}"'
            for key, label in labels.items())
        return f"{name}{{{body}}} {_number(value)}"
    return f"{name} {_number(value)}"


def render_metrics(registry: MetricsRegistry,
                   labels: Optional[Dict[str, str]] = None) -> str:
    """Prometheus text exposition of every instrument in the registry.

    Histograms render as summaries.  A histogram with zero
    observations still renders (its mere registration is a fact worth
    exposing) with ``NaN`` quantiles per Prometheus convention — a
    quantile of an empty sample is undefined, and ``0`` would read as
    a real measurement — while ``_sum``/``_count`` stay ``0``.

    ``labels`` are constant labels stamped on *every* sample — how a
    pre-fork serve worker marks its scrape with ``worker=``/``pid=``
    so a fleet's scrapes stay distinguishable.  The default (no
    labels) renders byte-identically to the historical output, which
    the golden-file tests pin.
    """
    const = dict(labels or {})
    lines = [f"# repro-metrics-schema: {METRICS_SCHEMA_VERSION}"]
    snapshot = registry.snapshot()
    for name, value in snapshot["counters"].items():
        mangled = _mangle(name)
        lines.append(f"# TYPE {mangled} counter")
        lines.append(format_sample(mangled, const, value))
    for name, value in snapshot["gauges"].items():
        mangled = _mangle(name)
        lines.append(f"# TYPE {mangled} gauge")
        lines.append(format_sample(mangled, const, value))
    for name, stats in snapshot["histograms"].items():
        mangled = _mangle(name)
        empty = stats["count"] == 0
        lines.append(f"# TYPE {mangled} summary")
        for quantile, key in (("0.5", "p50"), ("0.9", "p90"),
                              ("0.99", "p99")):
            lines.append(format_sample(
                mangled, {**const, "quantile": quantile},
                float("nan") if empty else stats[key]))
        lines.append(format_sample(f"{mangled}_sum", const,
                                   stats["sum"]))
        lines.append(format_sample(f"{mangled}_count", const,
                                   stats["count"]))
    return "\n".join(lines) + "\n"


def write_metrics(path, registry: MetricsRegistry) -> None:
    pathlib.Path(path).write_text(render_metrics(registry),
                                  encoding="utf-8")


def parse_metrics(text: str) -> Dict[str, float]:
    """Invert :func:`render_metrics` into ``{sample_name: value}``.

    Sample names keep their label suffix verbatim, e.g.
    ``repro_engine_analyze_task_seconds{quantile="0.5"}``.  The schema
    line is checked; ``# TYPE`` comments are skipped.
    """
    samples: Dict[str, float] = {}
    saw_schema = False
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            if line.startswith("# repro-metrics-schema:"):
                version = int(line.split(":", 1)[1].strip())
                if version != METRICS_SCHEMA_VERSION:
                    raise ValueError(
                        f"unsupported metrics schema version {version}")
                saw_schema = True
            continue
        name, _, value = line.rpartition(" ")
        samples[name] = float(value)
    if not saw_schema:
        raise ValueError("metrics text has no schema line")
    return samples
