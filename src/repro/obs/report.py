"""Human-readable rendering of a recorded trace.

``repro-analyze report trace`` prints this: a per-stage wall-time
breakdown (from the engine's ``stage:*`` spans) and the top-N slowest
binaries (from the worker-side ``binary`` spans and the synthesized
``quarantine`` spans), so a bulk sweep's hot spots are visible without
leaving the terminal.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..reports.text import format_percent, render_table
from .span import Span

#: Span names that represent one binary's analysis (ok / failed).
BINARY_SPAN = "binary"
QUARANTINE_SPAN = "quarantine"
STAGE_PREFIX = "stage:"


def stage_breakdown(spans: Sequence[Span],
                    ) -> List[Tuple[str, int, float]]:
    """``(stage, calls, total_seconds)`` rows in first-seen order."""
    totals: Dict[str, List[float]] = {}
    order: List[str] = []
    for span in spans:
        if not span.name.startswith(STAGE_PREFIX):
            continue
        stage = span.name[len(STAGE_PREFIX):]
        if stage not in totals:
            totals[stage] = [0, 0.0]
            order.append(stage)
        totals[stage][0] += 1
        totals[stage][1] += span.seconds
    return [(stage, int(totals[stage][0]), totals[stage][1])
            for stage in order]


def slowest_binaries(spans: Sequence[Span], top: int = 10,
                     ) -> List[Span]:
    """The ``top`` longest per-binary spans, slowest first."""
    binary_spans = [span for span in spans
                    if span.name in (BINARY_SPAN, QUARANTINE_SPAN)]
    binary_spans.sort(key=lambda span: (-span.seconds, span.span_id))
    return binary_spans[:top]


def _binary_label(span: Span) -> str:
    if span.name == QUARANTINE_SPAN:
        package = span.attrs.get("package", "?")
        artifact = span.attrs.get("artifact", "?")
        return f"{package}:{artifact}"
    return str(span.attrs.get("binary", "?"))


def _binary_status(span: Span) -> str:
    if not span.error:
        return "ok"
    error_class = span.attrs.get("error_class")
    return f"error:{error_class}" if error_class else "error"


def render_trace_report(spans: Sequence[Span], top: int = 10) -> str:
    """The ``report trace`` block: stage table + slowest-binaries table."""
    if not spans:
        return ("trace report\n"
                "  (no spans recorded — run analysis with tracing "
                "enabled)")
    blocks: List[str] = []
    stages = stage_breakdown(spans)
    if stages:
        total = sum(seconds for _, _, seconds in stages) or 1.0
        rows = [(stage, calls, f"{seconds * 1000:.1f} ms",
                 format_percent(seconds / total))
                for stage, calls, seconds in stages]
        blocks.append(render_table(
            ("stage", "spans", "wall time", "share"), rows,
            title="trace report — stage breakdown"))
    slow = slowest_binaries(spans, top=top)
    if slow:
        rows = [(rank + 1, _binary_label(span),
                 f"{span.seconds * 1000:.2f} ms", _binary_status(span))
                for rank, span in enumerate(slow)]
        blocks.append(render_table(
            ("#", "binary", "wall time", "status"), rows,
            title=f"trace report — slowest binaries (top {len(slow)} "
                  f"of {sum(1 for s in spans if s.name in (BINARY_SPAN, QUARANTINE_SPAN))})"))
    if len(blocks) < 2:
        blocks.append(f"  ({len(spans)} spans recorded)")
    return "\n\n".join(blocks)
