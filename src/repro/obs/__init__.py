"""Observability for the analysis engine: spans, metrics, exporters.

Layers:

* :mod:`repro.obs.span` — nested span tracing; thread-safe, process-
  mergeable, always balanced (a raising span still closes, flagged
  ``error=True``);
* :mod:`repro.obs.metrics` — counter/gauge/histogram registry with
  p50/p90/p99 latency quantiles; counters are backend-deterministic;
* :mod:`repro.obs.export` — versioned JSON-lines trace files and
  Prometheus-style text, with round-trip readers;
* :mod:`repro.obs.report` — the ``report trace`` stage-breakdown and
  slowest-binaries tables.

:class:`repro.engine.stats.EngineStats` is a thin view over one
:class:`SpanTracer` + :class:`MetricsRegistry` pair; the CLI's
``--trace-out`` / ``--metrics-out`` flags export them.
"""

from .export import (
    METRICS_SCHEMA_VERSION,
    TRACE_SCHEMA,
    TRACE_SCHEMA_VERSION,
    escape_label_value,
    format_sample,
    parse_metrics,
    read_trace,
    read_trace_file,
    render_metrics,
    span_to_dict,
    trace_to_lines,
    validate_span_dict,
    write_metrics,
    write_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .report import (
    render_trace_report,
    slowest_binaries,
    stage_breakdown,
)
from .span import Span, SpanTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "METRICS_SCHEMA_VERSION",
    "MetricsRegistry",
    "Span",
    "SpanTracer",
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_VERSION",
    "escape_label_value",
    "format_sample",
    "parse_metrics",
    "read_trace",
    "read_trace_file",
    "render_metrics",
    "render_trace_report",
    "slowest_binaries",
    "span_to_dict",
    "stage_breakdown",
    "trace_to_lines",
    "validate_span_dict",
    "write_metrics",
    "write_trace",
]
