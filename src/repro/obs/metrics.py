"""Metrics registry: counters, gauges, and latency histograms.

All instruments are created on demand through a
:class:`MetricsRegistry` and are individually lock-protected, so
worker threads can bump the same instrument concurrently without lost
updates (the engine's old ``stage_seconds`` dict was a bare
read-modify-write; the :class:`Gauge` here is the fix).

Conformance contract: **counter values and histogram counts are
deterministic** for a given corpus — identical across the serial,
thread, and process executor backends.  Gauge values and histogram
observations carry wall time and may differ run to run; only their
*presence* is part of the contract.  The cross-backend conformance
suite pins exactly this split.

Metric names are dotted lowercase (``engine.cache.hits``); the
Prometheus exporter mangles dots to underscores.
"""

from __future__ import annotations

import re
import threading
from typing import Dict, List, Optional

_NAME_RE = re.compile(r"^[a-z][a-z0-9_.-]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"invalid metric name {name!r}: must match "
            f"{_NAME_RE.pattern}")
    return name


class Counter:
    """Monotonic-by-convention numeric counter."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value


class Gauge:
    """Point-in-time value with an atomic accumulate."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += delta


class Histogram:
    """Latency histogram with nearest-rank percentiles."""

    __slots__ = ("_lock", "_observations")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._observations: List[float] = []

    def observe(self, value: float) -> None:
        with self._lock:
            self._observations.append(value)

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._observations)

    @property
    def total(self) -> float:
        with self._lock:
            return sum(self._observations)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, ``q`` in [0, 100]; 0.0 if empty."""
        with self._lock:
            if not self._observations:
                return 0.0
            ordered = sorted(self._observations)
        rank = max(1, -(-len(ordered) * q // 100))  # ceil, floor at 1
        return ordered[int(rank) - 1]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p90(self) -> float:
        return self.percentile(90)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            observations = list(self._observations)
        if not observations:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {"count": len(observations),
                "sum": sum(observations),
                "min": min(observations),
                "max": max(observations),
                "p50": self.percentile(50),
                "p90": self.percentile(90),
                "p99": self.percentile(99)}


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[_check_name(name)] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[_check_name(name)] = Gauge()
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = (
                    self._histograms)[_check_name(name)] = Histogram()
            return instrument

    # --- snapshots -----------------------------------------------------
    #
    # counter_values is sorted (it is the conformance fingerprint and
    # the export order); gauge_values preserves creation order so stage
    # timings render in execution order.

    def counter_values(self) -> Dict[str, float]:
        with self._lock:
            items = list(self._counters.items())
        return {name: counter.value for name, counter in sorted(items)}

    def gauge_values(self) -> Dict[str, float]:
        with self._lock:
            items = list(self._gauges.items())
        return {name: gauge.value for name, gauge in items}

    def histogram_values(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            items = list(self._histograms.items())
        return {name: histogram.snapshot()
                for name, histogram in sorted(items)}

    def snapshot(self) -> Dict[str, Dict]:
        """Everything, as plain data (the JSON/Prometheus source)."""
        return {"counters": self.counter_values(),
                "gauges": dict(sorted(self.gauge_values().items())),
                "histograms": self.histogram_values()}
