"""Structured span tracing for the analysis engine.

A :class:`Span` is one timed, named region of work; spans nest, so a
run produces a forest of spans — per-stage spans opened by the engine
driver, per-binary spans opened *inside* the workers, and synthesized
``quarantine`` spans for binaries whose analysis failed.

:class:`SpanTracer` is the recorder.  Design constraints, in order:

* **Balanced under all control flow.**  ``span()`` is a context
  manager; a span that raises still closes (with ``error=True``) and
  is recorded.  There is no API for leaving a span open.
* **Thread safe.**  Worker threads trace concurrently; the open-span
  stack is thread-local (spans never parent across threads), and the
  finished list and id allocator are lock-protected.
* **Mergeable across processes.**  Spans are plain picklable data.  A
  worker process records into its own tracer and ships the finished
  spans back over the executor's ``TaskOutcome`` channel; the driver
  calls :meth:`SpanTracer.adopt`, which remaps ids, re-parents the
  batch, and re-bases its clock (a forked worker's ``perf_counter``
  shares no origin with ours — relative timing within a batch is
  preserved exactly, absolute placement is approximate).
* **Cheap to disable.**  ``SpanTracer(enabled=False)`` turns every
  operation into a no-op so the overhead benchmark can measure the
  instrumented path against a true baseline.

The clock is injectable for deterministic tests and golden files.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence


@dataclass(slots=True)
class Span:
    """One closed, named, timed region of work."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float
    end: float = 0.0
    error: bool = False
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return max(0.0, self.end - self.start)


class _NullSpan:
    """Stand-in yielded by a disabled tracer: absorbs reads."""

    __slots__ = ()
    name = ""
    span_id: Optional[int] = None
    parent_id: Optional[int] = None
    start = 0.0
    end = 0.0
    error = False
    seconds = 0.0
    attrs: Dict[str, object] = {}


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Hand-rolled context manager for the tracing hot path.

    A generator-based ``@contextmanager`` costs a couple of
    microseconds per span; with four spans per analyzed binary that is
    measurable on the warm path, so this is a plain object instead.
    """

    __slots__ = ("_tracer", "_span", "_stack")

    def __init__(self, tracer: "SpanTracer", span: Span,
                 stack: List[Span]) -> None:
        self._tracer = tracer
        self._span = span
        self._stack = stack

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        if exc_type is not None:
            span.error = True
        tracer = self._tracer
        span.end = tracer.clock()
        self._stack.pop()
        with tracer._lock:
            tracer._finished.append(span)
        return False


class _NullContext:
    __slots__ = ()

    def __enter__(self) -> Span:
        return _NULL_SPAN  # type: ignore[return-value]

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class SpanTracer:
    """Thread-safe recorder of nested spans."""

    def __init__(self, enabled: bool = True,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.enabled = enabled
        self.clock = clock
        self._lock = threading.Lock()
        self._finished: List[Span] = []
        self._next_id = 1
        self._stacks = threading.local()

    # --- internals -----------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._stacks, "spans", None)
        if stack is None:
            stack = self._stacks.spans = []
        return stack

    def _allocate(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    # --- recording -----------------------------------------------------

    def span(self, name: str, **attrs) -> "_SpanContext":
        """Open a nested span; always closes, flags ``error`` on raise."""
        if not self.enabled:
            return _NULL_CONTEXT  # type: ignore[return-value]
        stack = self._stack()
        span = Span(name=name, span_id=self._allocate(),
                    parent_id=stack[-1].span_id if stack else None,
                    start=self.clock(), attrs=attrs)
        stack.append(span)
        return _SpanContext(self, span, stack)

    def record_span(self, name: str, seconds: float = 0.0,
                    error: bool = False,
                    parent_id: Optional[int] = None,
                    attrs: Optional[Dict[str, object]] = None) -> Span:
        """Synthesize an already-complete span.

        Used where the work happened elsewhere but must appear in the
        trace — e.g. a ``quarantine`` span for a worker task whose own
        spans died with it.  The span ends *now* and is back-dated by
        ``seconds``.
        """
        if not self.enabled:
            return _NULL_SPAN  # type: ignore[return-value]
        now = self.clock()
        if parent_id is None:
            parent_id = self.current_id()
        span = Span(name=name, span_id=self._allocate(),
                    parent_id=parent_id,
                    start=now - max(0.0, seconds), end=now,
                    error=error, attrs=dict(attrs or {}))
        with self._lock:
            self._finished.append(span)
        return span

    def adopt(self, spans: Sequence[Span],
              parent_id: Optional[int] = None) -> List[Span]:
        """Merge a worker-side batch of finished spans into this trace.

        Ids are remapped into this tracer's id space (internal
        parent/child links preserved); batch roots are re-parented
        under ``parent_id``; the batch clock is re-based so its latest
        end lands at the adoption time.
        """
        if not self.enabled or not spans:
            return []
        with self._lock:
            base = self._next_id
            self._next_id += len(spans)
        remap = {span.span_id: base + index
                 for index, span in enumerate(spans)}
        offset = self.clock() - max(span.end for span in spans)
        adopted = [Span(name=span.name,
                        span_id=remap[span.span_id],
                        parent_id=remap.get(span.parent_id, parent_id),
                        start=span.start + offset,
                        end=span.end + offset,
                        error=span.error,
                        attrs=dict(span.attrs))
                   for span in spans]
        with self._lock:
            self._finished.extend(adopted)
        return adopted

    # --- inspection ----------------------------------------------------

    def current_id(self) -> Optional[int]:
        """Id of the calling thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def open_depth(self) -> int:
        """How many spans the calling thread currently has open."""
        return len(self._stack())

    def finished(self) -> List[Span]:
        """Every closed span so far, in close/adoption order."""
        with self._lock:
            return list(self._finished)

    def name_multiset(self) -> Counter:
        """Span-name multiset — the backend-conformance fingerprint."""
        with self._lock:
            return Counter(span.name for span in self._finished)
