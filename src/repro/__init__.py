"""repro — reproduction of "A Study of Modern Linux API Usage and
Compatibility: What to Support When You're Supporting" (EuroSys 2016).

The package builds a synthetic Ubuntu-like archive of real ELF
binaries, statically analyzes every binary to recover per-package API
footprints, and computes the paper's two metrics — API importance and
weighted completeness — plus every table and figure of the evaluation.

Quickstart::

    from repro import Study
    study = Study.small()
    print(study.fig2_syscall_importance().rendered)
    print(study.tab6_linux_systems().rendered)
"""

from .analysis import (
    AnalysisDatabase,
    AnalysisPipeline,
    AnalysisResult,
    BinaryAnalysis,
    Footprint,
)
from .metrics import (
    api_importance,
    completeness_curve,
    importance_table,
    unweighted_importance_table,
    weighted_completeness,
)
from .study import ExperimentOutput, Study
from .synth import Ecosystem, EcosystemBuilder, EcosystemConfig, build_ecosystem

__version__ = "1.0.0"

__all__ = [
    "AnalysisDatabase",
    "AnalysisPipeline",
    "AnalysisResult",
    "BinaryAnalysis",
    "Ecosystem",
    "EcosystemBuilder",
    "EcosystemConfig",
    "ExperimentOutput",
    "Footprint",
    "Study",
    "api_importance",
    "build_ecosystem",
    "completeness_curve",
    "importance_table",
    "unweighted_importance_table",
    "weighted_completeness",
    "__version__",
]
