"""Linux-compatible systems and emulation layers (§4.1, Table 6).

Each model records the system-call surface a system implements, the way
the paper identified it: from the system's syscall table or its
``sys_ni_syscall`` stubs.  UML and L4Linux are Linux forks (near-full
tables minus architecture-specific and administrative calls); the
FreeBSD emulation layer and Graphene are from-scratch tables with
larger gaps.

Graphene's set is constructed against a measured importance ranking —
its defining property in the paper is *which* highly-ranked calls it
lacks (the scheduling pair), not the exact membership list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from ..analysis.footprint import Footprint
from ..dataset.core import ApiSpace, FootprintsLike, as_dataset
from ..metrics.completeness import missing_apis_report, weighted_completeness
from ..packages.popcon import PopularityContest
from ..packages.repository import Repository
from ..syscalls.table import ALL_NAMES, RETIRED_NAMES


@dataclass(frozen=True)
class SystemModel:
    """A target system: name plus its supported syscall set."""

    name: str
    version: str
    supported: FrozenSet[str]
    source: str = ""

    @property
    def count(self) -> int:
        return len(self.supported)

    def missing(self) -> FrozenSet[str]:
        return ALL_NAMES - self.supported

    def supported_mask(self, space: ApiSpace,
                       dimension: str = "syscall") -> int:
        """This system's supported set as a bitmask over ``space``.

        Supported calls no measured package uses fall outside the
        interned universe and drop out of the mask — exactly the
        treatment the completeness metrics give them.
        """
        return space.mask_of(dimension, self.supported)

    def unsupported_demand(self, space: ApiSpace,
                           dimension: str = "syscall") -> int:
        """Mask of measured APIs this system does *not* implement."""
        return (space.universe_mask(dimension)
                & ~self.supported_mask(space, dimension))


def _exclude(names: Iterable[str]) -> FrozenSet[str]:
    missing = frozenset(names)
    unknown = missing - ALL_NAMES
    if unknown:
        raise ValueError(f"unknown syscalls excluded: {sorted(unknown)}")
    return frozenset(ALL_NAMES - missing)


# User-Mode Linux 3.19: a Linux port to its own architecture; loses the
# hardware-poking and handle-based calls (Table 6 suggests adding
# name_to_handle_at, iopl, ioperm, perf_event_open).
UML = SystemModel(
    name="User-Mode-Linux", version="3.19",
    supported=_exclude(set(RETIRED_NAMES) | {
        "name_to_handle_at", "open_by_handle_at", "iopl", "ioperm",
        "perf_event_open", "kcmp", "bpf", "lookup_dcookie",
        "rt_tgsigqueueinfo", "mq_notify", "move_pages", "migrate_pages",
        "modify_ldt", "kexec_load", "kexec_file_load",
        "remap_file_pages", "restart_syscall", "io_cancel",
        "io_destroy", "mq_getsetattr", "mq_timedsend",
        "mq_timedreceive", "clock_adjtime",
    }),
    source="arch-specific syscall table of the UML port",
)

# L4Linux 4.3: Linux on the L4 microkernel; nearly complete (Table 6
# suggests quotactl, migrate_pages, kexec_load).
L4LINUX = SystemModel(
    name="L4Linux", version="4.3",
    supported=_exclude(set(RETIRED_NAMES) | {
        "quotactl", "migrate_pages", "kexec_load", "kexec_file_load",
        "move_pages", "lookup_dcookie", "rt_tgsigqueueinfo",
        "mq_notify", "remap_file_pages", "restart_syscall",
        "modify_ldt", "io_cancel", "kcmp", "bpf", "execveat",
        "open_by_handle_at", "name_to_handle_at", "seccomp",
        "sched_setattr", "sched_getattr", "clock_adjtime",
    }),
    source="sys_ni_syscall stubs in the L4Linux tree",
)

# FreeBSD's Linux emulation layer 10.2: missing the Linux-only
# notification and splicing families (Table 6 suggests inotify*,
# splice, umount2, timerfd*).
FREEBSD_EMU = SystemModel(
    name="FreeBSD-emu", version="10.2",
    supported=_exclude(set(RETIRED_NAMES) | {
        # families the paper calls out
        "inotify_init", "inotify_init1", "inotify_add_watch",
        "inotify_rm_watch", "splice", "tee", "vmsplice", "umount2",
        "timerfd_create", "timerfd_settime", "timerfd_gettime",
        # Linux-only surfaces FreeBSD never mapped
        "fanotify_init", "fanotify_mark", "signalfd",
        "epoll_pwait", "name_to_handle_at",
        "open_by_handle_at", "kcmp", "bpf", "seccomp", "execveat",
        "perf_event_open", "process_vm_readv", "process_vm_writev",
        "kexec_load", "kexec_file_load", "migrate_pages", "move_pages",
        "mbind", "set_mempolicy", "get_mempolicy", "add_key",
        "request_key", "keyctl", "io_setup", "io_destroy",
        "io_getevents", "io_submit", "io_cancel", "lookup_dcookie",
        "remap_file_pages", "rt_tgsigqueueinfo", "restart_syscall",
        "get_robust_list", "mq_open", "mq_unlink",
        "mq_timedsend", "mq_timedreceive", "mq_notify",
        "mq_getsetattr", "quotactl", "acct", "swapon", "swapoff",
        "reboot", "sethostname", "setdomainname", "iopl", "ioperm",
        "init_module", "finit_module", "delete_module", "pivot_root",
        "vhangup", "personality", "ustat",
        "getcpu", "syslog", "ioprio_set", "ioprio_get",
        "modify_ldt", "clock_adjtime", "adjtimex", "readahead",
        "sync_file_range", "preadv", "pwritev",
        "sched_setattr", "sched_getattr", "renameat2", "memfd_create",
        "unshare", "setns",
    }),
    source="linux(4) emulation syscall table in the FreeBSD tree",
)


def graphene_model(ranking: List[str],
                   size: int = 143,
                   missing_pair: Tuple[str, str] = (
                       "sched_setscheduler", "sched_setparam"),
                   also_missing: Tuple[str, ...] = (
                       "statfs", "utimes", "getxattr", "fallocate",
                       "eventfd2"),
                   ) -> SystemModel:
    """Graphene library OS (EuroSys'14) against a measured ranking.

    Takes the most-important ``ranking`` entries, removes the
    scheduling pair (the paper's "primary culprit") and the next five
    APIs Table 6 suggests adding, then tops the set back up to
    ``size`` from the ranking tail.
    """
    missing = set(missing_pair) | set(also_missing)
    supported: List[str] = []
    for name in ranking:
        if name in missing:
            continue
        supported.append(name)
        if len(supported) >= size:
            break
    return SystemModel(
        name="Graphene", version="2014",
        supported=frozenset(supported),
        source="manually identified from the Graphene syscall table",
    )


def graphene_plus_sched(graphene: SystemModel) -> SystemModel:
    """Graphene after adding the two scheduling system calls (the ¶ row
    of Table 6)."""
    return SystemModel(
        name="Graphene+sched", version="2014",
        supported=graphene.supported | {"sched_setscheduler",
                                        "sched_setparam"},
        source=graphene.source,
    )


@dataclass(frozen=True)
class SystemEvaluation:
    """One row of Table 6."""

    system: str
    syscall_count: int
    weighted_completeness: float
    suggested_apis: Tuple[str, ...]


def evaluate_system(system: SystemModel,
                    footprints: FootprintsLike,
                    popcon: Optional[PopularityContest] = None,
                    repository: Optional[Repository] = None,
                    suggestions: int = 5) -> SystemEvaluation:
    """Compute weighted completeness and next-API suggestions.

    ``footprints`` may be a plain mapping or a
    :class:`repro.dataset.Dataset`; in the latter case ``popcon`` and
    ``repository`` default to the dataset's own bindings and the
    interned bitsets are reused across both metrics.
    """
    dataset = as_dataset(footprints, popcon, repository)
    completeness = weighted_completeness(system.supported, dataset)
    suggested = missing_apis_report(
        system.supported, dataset, limit=suggestions)
    return SystemEvaluation(
        system=f"{system.name} {system.version}",
        syscall_count=system.count,
        weighted_completeness=completeness,
        suggested_apis=tuple(api for api, _ in suggested),
    )
