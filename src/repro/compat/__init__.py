"""Compatibility evaluation of Linux systems, emulation layers, and
libc variants (Tables 6 and 7)."""

from .advisor import (
    ChangeImpact,
    WorkloadSuggestion,
    change_impact,
    coverage_plan,
    workload_suggestions,
)
from .libc_compat import (
    LibcEvaluation,
    evaluate_all_variants,
    evaluate_libc_variant,
    normalized_dataset,
)
from .systems import (
    FREEBSD_EMU,
    L4LINUX,
    SystemEvaluation,
    SystemModel,
    UML,
    evaluate_system,
    graphene_model,
    graphene_plus_sched,
)

__all__ = [
    "ChangeImpact",
    "FREEBSD_EMU",
    "WorkloadSuggestion",
    "change_impact",
    "coverage_plan",
    "workload_suggestions",
    "L4LINUX",
    "LibcEvaluation",
    "SystemEvaluation",
    "SystemModel",
    "UML",
    "evaluate_all_variants",
    "evaluate_libc_variant",
    "evaluate_system",
    "normalized_dataset",
    "graphene_model",
    "graphene_plus_sched",
]
