"""Weighted completeness of libc variants (§4.2, Table 7).

A package is supported by an alternative libc when every libc symbol
its binaries import is exported by that variant.  Two measurements per
variant, as in the paper:

* **raw** — match symbols exactly.  Binaries built against glibc
  headers import ``_chk`` fortify wrappers and stdio internals, so
  everything but a glibc fork scores near zero.
* **normalized** — reverse glibc's compile-time replacements first
  (``__printf_chk`` → ``printf``), revealing the real compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..analysis.footprint import Footprint
from ..libc.variants import LibcVariant, VARIANTS, normalize_footprint
from ..metrics.completeness import weighted_completeness
from ..packages.popcon import PopularityContest
from ..packages.repository import Repository


@dataclass(frozen=True)
class LibcEvaluation:
    """One row of Table 7."""

    variant: str
    export_count: int
    raw_completeness: float
    normalized_completeness: float
    sample_missing: Tuple[str, ...]


def _normalized_footprints(footprints: Mapping[str, Footprint],
                           ) -> Dict[str, Footprint]:
    out = {}
    for package, footprint in footprints.items():
        out[package] = Footprint(
            syscalls=footprint.syscalls,
            ioctls=footprint.ioctls,
            fcntls=footprint.fcntls,
            prctls=footprint.prctls,
            pseudo_files=footprint.pseudo_files,
            libc_symbols=normalize_footprint(footprint.libc_symbols),
            unresolved_sites=footprint.unresolved_sites,
        )
    return out


def evaluate_libc_variant(variant: LibcVariant,
                          footprints: Mapping[str, Footprint],
                          popcon: PopularityContest,
                          repository: Optional[Repository] = None,
                          ) -> LibcEvaluation:
    raw = weighted_completeness(
        variant.supported, footprints, popcon, repository,
        dimension="libc")
    normalized = weighted_completeness(
        normalize_footprint(variant.supported),
        _normalized_footprints(footprints), popcon, repository,
        dimension="libc")

    # Most frequently demanded symbols the variant lacks.
    demand: Dict[str, int] = {}
    for footprint in footprints.values():
        for symbol in normalize_footprint(footprint.libc_symbols):
            if not variant.supports(symbol):
                demand[symbol] = demand.get(symbol, 0) + 1
    sample = tuple(name for name, _ in sorted(
        demand.items(), key=lambda item: (-item[1], item[0]))[:3])
    return LibcEvaluation(
        variant=f"{variant.name} {variant.version}",
        export_count=variant.nominal_export_count,
        raw_completeness=raw,
        normalized_completeness=normalized,
        sample_missing=sample,
    )


def evaluate_all_variants(footprints: Mapping[str, Footprint],
                          popcon: PopularityContest,
                          repository: Optional[Repository] = None,
                          ) -> List[LibcEvaluation]:
    return [evaluate_libc_variant(variant, footprints, popcon,
                                  repository)
            for variant in VARIANTS.values()]
