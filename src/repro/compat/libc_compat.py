"""Weighted completeness of libc variants (§4.2, Table 7).

A package is supported by an alternative libc when every libc symbol
its binaries import is exported by that variant.  Two measurements per
variant, as in the paper:

* **raw** — match symbols exactly.  Binaries built against glibc
  headers import ``_chk`` fortify wrappers and stdio internals, so
  everything but a glibc fork scores near zero.
* **normalized** — reverse glibc's compile-time replacements first
  (``__printf_chk`` → ``printf``), revealing the real compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..analysis.footprint import Footprint
from ..dataset.core import Dataset, FootprintsLike, as_dataset
from ..libc.variants import LibcVariant, VARIANTS, normalize_footprint
from ..metrics.completeness import weighted_completeness
from ..packages.popcon import PopularityContest
from ..packages.repository import Repository


@dataclass(frozen=True)
class LibcEvaluation:
    """One row of Table 7."""

    variant: str
    export_count: int
    raw_completeness: float
    normalized_completeness: float
    sample_missing: Tuple[str, ...]


def _normalized_footprints(footprints: Mapping[str, Footprint],
                           ) -> Dict[str, Footprint]:
    out = {}
    for package, footprint in footprints.items():
        out[package] = Footprint(
            syscalls=footprint.syscalls,
            ioctls=footprint.ioctls,
            fcntls=footprint.fcntls,
            prctls=footprint.prctls,
            pseudo_files=footprint.pseudo_files,
            libc_symbols=normalize_footprint(footprint.libc_symbols),
            unresolved_sites=footprint.unresolved_sites,
        )
    return out


def normalized_dataset(footprints: FootprintsLike,
                       popcon: Optional[PopularityContest] = None,
                       repository: Optional[Repository] = None,
                       ) -> Dataset:
    """Interned dataset with glibc fortify aliases reversed.

    Normalization rewrites every package's libc symbols, so the
    normalized corpus needs its own interner; building it once and
    sharing it across all variant evaluations (Table 7 scores seven)
    amortizes the re-interning.
    """
    dataset = as_dataset(footprints, popcon, repository)
    return Dataset(_normalized_footprints(dataset),
                   popcon=dataset.popcon,
                   repository=dataset.repository)


def evaluate_libc_variant(variant: LibcVariant,
                          footprints: FootprintsLike,
                          popcon: Optional[PopularityContest] = None,
                          repository: Optional[Repository] = None,
                          normalized: Optional[Dataset] = None,
                          ) -> LibcEvaluation:
    dataset = as_dataset(footprints, popcon, repository)
    if normalized is None:
        normalized = normalized_dataset(dataset)
    raw = weighted_completeness(
        variant.supported, dataset, dimension="libc")
    normalized_wc = weighted_completeness(
        normalize_footprint(variant.supported), normalized,
        dimension="libc")

    # Most frequently demanded symbols the variant lacks.  The
    # normalized dataset's footprints already carry the rewritten
    # symbol sets, so no per-variant re-normalization pass is needed.
    demand: Dict[str, int] = {}
    for footprint in normalized.values():
        for symbol in footprint.libc_symbols:
            if not variant.supports(symbol):
                demand[symbol] = demand.get(symbol, 0) + 1
    sample = tuple(name for name, _ in sorted(
        demand.items(), key=lambda item: (-item[1], item[0]))[:3])
    return LibcEvaluation(
        variant=f"{variant.name} {variant.version}",
        export_count=variant.nominal_export_count,
        raw_completeness=raw,
        normalized_completeness=normalized_wc,
        sample_missing=sample,
    )


def evaluate_all_variants(footprints: FootprintsLike,
                          popcon: Optional[PopularityContest] = None,
                          repository: Optional[Repository] = None,
                          ) -> List[LibcEvaluation]:
    dataset = as_dataset(footprints, popcon, repository)
    shared_normalized = normalized_dataset(dataset)
    return [evaluate_libc_variant(variant, dataset,
                                  normalized=shared_normalized)
            for variant in VARIANTS.values()]
