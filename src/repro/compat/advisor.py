"""Research-planning advisors (§1, §6).

Two practical questions the paper says its dataset answers:

* *"If a given system API is optimized, what widely-used applications
  would likely benefit?"* — so a researcher can pick evaluation
  workloads that actually exercise the modified calls
  (:func:`workload_suggestions`).
* *"What is the impact of an API change on applications?"* — so a
  kernel maintainer can see who breaks before deprecating
  (:func:`change_impact`).

Both advisors intersect per-package footprints with the modified-API
set; on an interned :class:`repro.dataset.Dataset` those intersections
are single bitmask ANDs over the dataset's cached masks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from ..analysis.footprint import Footprint
from ..dataset.core import Dataset, FootprintsLike, as_dataset
from ..dataset.dimensions import DIMENSIONS
from ..dataset.interner import popcount
from ..metrics.importance import dependents_index
from ..packages.popcon import PopularityContest
from ..packages.repository import Repository


@dataclass(frozen=True)
class WorkloadSuggestion:
    """One candidate evaluation workload."""

    package: str
    install_probability: float
    apis_exercised: Tuple[str, ...]   # of the modified set

    @property
    def coverage(self) -> int:
        return len(self.apis_exercised)


def workload_suggestions(modified_apis: Iterable[str],
                         footprints: FootprintsLike,
                         popcon: Optional[PopularityContest] = None,
                         dimension: str = "syscall",
                         limit: int = 10) -> List[WorkloadSuggestion]:
    """Rank packages as evaluation workloads for a set of modified
    APIs: prefer packages exercising more of the set, then more widely
    installed ones (a benefit nobody installs is not a benefit)."""
    dataset = as_dataset(footprints, popcon)
    space = dataset.space
    modified_mask = space.mask_of(dimension, modified_apis)
    masks = dataset.masks(dimension)
    suggestions = []
    for position, package in enumerate(dataset.packages):
        exercised_mask = masks[position] & modified_mask
        if not exercised_mask:
            continue
        exercised = tuple(sorted(space.names_of(dimension,
                                                exercised_mask)))
        suggestions.append(WorkloadSuggestion(
            package=package,
            install_probability=dataset.weight_of(package),
            apis_exercised=exercised,
        ))
    suggestions.sort(key=lambda s: (-s.coverage,
                                    -s.install_probability, s.package))
    return suggestions[:limit]


@dataclass(frozen=True)
class ChangeImpact:
    """Consequences of removing or changing one API."""

    api: str
    direct_users: Tuple[str, ...]          # packages using the API
    affected_installs: float               # probability >=1 user installed
    cascade: Tuple[str, ...]               # dependents of direct users
    verdict: str                           # human-readable summary


def change_impact(api: str,
                  footprints: FootprintsLike,
                  popcon: Optional[PopularityContest] = None,
                  repository: Optional[Repository] = None,
                  dimension: str = "syscall") -> ChangeImpact:
    """What breaks if ``api`` is removed (§6's deprecation question).

    The cascade follows the full dependency semantics: a package
    counts as a dependent of ``P`` when any alternative in one of its
    groups names ``P`` directly *or* names a virtual package ``P``
    provides — so deprecating an API used only by the concrete
    provider of ``mail-transport-agent`` still surfaces every package
    depending on the virtual name.
    """
    dataset = as_dataset(footprints, popcon, repository)
    if dataset.repository is None:
        raise ValueError("change_impact needs a dependency repository")
    index = dependents_index(dataset, dimension)
    users = sorted(index.get(api, []))
    probability_none = 1.0
    for package in users:
        probability_none *= 1.0 - dataset.weight_of(package)
    affected = 1.0 - probability_none
    cascade = set()
    for package in users:
        cascade |= dataset.repository.reverse_dependencies(package)
    cascade -= set(users)
    if not users:
        verdict = "unused: removable today"
    elif affected < 0.10:
        verdict = (f"niche: port {len(users)} package(s) "
                   f"({', '.join(users[:4])}) then remove")
    elif affected < 0.995:
        verdict = "substantial user base: deprecate with a long horizon"
    else:
        verdict = "indispensable: effectively unremovable"
    return ChangeImpact(
        api=api,
        direct_users=tuple(users),
        affected_installs=affected,
        cascade=tuple(sorted(cascade)),
        verdict=verdict,
    )


def coverage_plan(modified_apis: Iterable[str],
                  footprints: FootprintsLike,
                  popcon: Optional[PopularityContest] = None,
                  dimension: str = "syscall",
                  ) -> List[WorkloadSuggestion]:
    """Greedy minimum workload set covering every modified API.

    Answers "what is the smallest benchmark suite that exercises all
    my changes?" — packages are added in order of marginal coverage.
    """
    dataset = as_dataset(footprints, popcon)
    space = dataset.space
    remaining = space.mask_of(dimension, modified_apis)
    masks = dataset.masks(dimension)
    candidates: Dict[str, int] = {}
    for position, package in enumerate(dataset.packages):
        overlap = masks[position] & remaining
        if overlap:
            candidates[package] = overlap
    chosen: List[WorkloadSuggestion] = []
    while remaining and candidates:
        best_pkg, best_apis = max(
            candidates.items(),
            key=lambda item: (popcount(item[1] & remaining),
                              dataset.weight_of(item[0]),
                              item[0]))
        gain = best_apis & remaining
        if not gain:
            break
        chosen.append(WorkloadSuggestion(
            package=best_pkg,
            install_probability=dataset.weight_of(best_pkg),
            apis_exercised=tuple(sorted(
                space.names_of(dimension, best_apis))),
        ))
        remaining &= ~gain
        del candidates[best_pkg]
    return chosen
