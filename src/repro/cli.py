"""Command-line interface: ``repro-analyze``.

Runs the study and prints selected tables/figures, generates seccomp
policies, evaluates a custom system described by a syscall list, or
keeps the analyzed dataset warm behind an HTTP API (``serve``).

Exit codes follow the usual Unix taxonomy:

* ``0`` — success;
* ``1`` — the run itself failed (analysis fault, I/O error);
* ``2`` — usage error (bad flag, unknown package/experiment);
* ``130`` — interrupted (Ctrl-C), reported without a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from .metrics import weighted_completeness
from .study import Study
from .synth import EcosystemConfig

EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2
EXIT_INTERRUPT = 130

_EXPERIMENTS = {
    "fig1": "fig1_binary_types",
    "fig2": "fig2_syscall_importance",
    "tab1": "tab1_library_only_syscalls",
    "tab2": "tab2_single_package_syscalls",
    "tab3": "tab3_unused_syscalls",
    "fig3": "fig3_completeness_curve",
    "tab4": "tab4_stages",
    "fig4": "fig4_ioctl",
    "fig5": "fig5_fcntl_prctl",
    "fig6": "fig6_pseudo_files",
    "fig7": "fig7_libc_importance",
    "strip": "libc_strip_analysis",
    "tab5": "tab5_startup_syscalls",
    "tab6": "tab6_linux_systems",
    "tab7": "tab7_libc_variants",
    "fig8": "fig8_unweighted",
    "tab8": "tab8_secure_variants",
    "tab9": "tab9_old_new",
    "tab10": "tab10_portability",
    "tab11": "tab11_power",
    "adoption": "adoption",
    "tab12": "tab12_framework_stats",
    "surface": "attack_surface",
    "decomposition": "libc_decomposition",
    "engine": "engine_report",
    "failures": "failure_report",
    "trace": "trace_report",
    "dataset": "dataset_report",
    "depsem": "dep_semantics_report",
}


def _job_count(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Reproduce the EuroSys'16 Linux API usage study.")
    parser.add_argument("--fillers", type=int, default=200,
                        help="number of filler packages to synthesize")
    parser.add_argument("--drivers", type=int, default=30,
                        help="number of driver-utility packages")
    parser.add_argument("--scripts", type=int, default=250,
                        help="number of script packages")
    parser.add_argument("--seed", type=int, default=2016,
                        help="ecosystem generation seed")
    parser.add_argument("--jobs", type=_job_count, default=1,
                        metavar="N",
                        help="analysis workers (N>1 fans per-binary "
                             "analysis out over N processes)")
    parser.add_argument("--cache-dir", metavar="PATH", default=None,
                        help="persistent content-addressed analysis "
                             "cache; warm re-runs skip unchanged "
                             "binaries")
    parser.add_argument("--strict", action="store_true",
                        help="fail fast: the first per-binary analysis "
                             "failure aborts the run instead of being "
                             "quarantined")
    parser.add_argument("--max-failures", type=int, default=None,
                        metavar="N",
                        help="abort once more than N binaries are "
                             "quarantined (default: unlimited)")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="write the analysis run's span trace as "
                             "JSON lines (one span per line)")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write the analysis run's metrics as "
                             "Prometheus-style text")
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="print tables/figures from the paper")
    report.add_argument(
        "experiments", nargs="*", default=[],
        help=f"which to print (default: all); "
             f"choices: {', '.join(_EXPERIMENTS)}")
    report.add_argument(
        "--save", metavar="DIR", default=None,
        help="also write each experiment's output to DIR/<name>.txt")

    seccomp = sub.add_parser(
        "seccomp", help="generate a seccomp policy for a package")
    seccomp.add_argument("package", help="package name")

    evaluate = sub.add_parser(
        "evaluate", help="weighted completeness of a syscall list")
    evaluate.add_argument(
        "syscalls", help="comma-separated supported syscall names, "
                         "or @file with one name per line")

    sub.add_parser("packages", help="list synthesized packages")

    trace = sub.add_parser(
        "trace", help="dynamically execute a package's binary and "
                      "print its syscall trace (strace-like)")
    trace.add_argument("package", help="package name")
    trace.add_argument("--limit", type=int, default=40,
                       help="events to print")

    identify = sub.add_parser(
        "identify", help="identify a package from an observed "
                         "syscall list (footprint signatures, §6)")
    identify.add_argument(
        "syscalls", help="comma-separated observed syscall names, "
                         "or @file with one name per line")

    disasm = sub.add_parser(
        "disasm", help="disassemble a package's first executable")
    disasm.add_argument("package", help="package name")
    disasm.add_argument("--limit", type=int, default=60,
                        help="instructions to print")

    drift = sub.add_parser(
        "drift", help="simulate a later release and diff API usage")
    drift.add_argument("--shift", type=float, default=0.35,
                       help="fraction of legacy-API users migrated")

    cache = sub.add_parser(
        "cache", help="inspect or clear the analysis record cache "
                      "(requires --cache-dir)")
    cache.add_argument("action", choices=("stats", "clear"),
                       help="stats: entries/size; clear: delete all "
                            "cached records")

    dataset = sub.add_parser(
        "dataset", help="inspect, export, or convert the interned "
                        "footprint dataset behind every metric")
    dataset.add_argument("action",
                         choices=("stats", "export", "convert"),
                         help="stats: per-dimension universe sizes; "
                              "export: write the study's snapshot; "
                              "convert: transcode an existing "
                              "snapshot between JSON and .rsnap "
                              "(no analysis run)")
    dataset.add_argument("--out", metavar="PATH", default=None,
                         help="destination (default: dataset.json / "
                              "dataset.rsnap by --format)")
    dataset.add_argument("--in", dest="input", metavar="PATH",
                         default=None,
                         help="convert source: a JSON or .rsnap "
                              "snapshot (format is sniffed)")
    dataset.add_argument("--format", choices=("json", "binary"),
                         default=None,
                         help="output format (default: inferred from "
                              "--out suffix; export falls back to "
                              "json, convert to the opposite of the "
                              "input format)")

    series = sub.add_parser(
        "series", help="build and query a longitudinal multi-release "
                       "dataset series (.rser: one base snapshot + "
                       "per-release deltas)")
    series.add_argument("action", choices=("build", "stats", "diff"),
                        help="build: evolve a paper-scale corpus over "
                             "N releases and write a .rser; stats: "
                             "shape and storage economics; diff: what "
                             "changed between two releases")
    series.add_argument("--releases", type=int, default=10,
                        metavar="N",
                        help="releases to evolve (build; default: 10)")
    series.add_argument("--scale", type=float, default=0.01,
                        metavar="F",
                        help="paper-scale fraction for the base corpus "
                             "(build; default: 0.01)")
    series.add_argument("--out", metavar="PATH", default="series.rser",
                        help="build destination "
                             "(default: series.rser)")
    series.add_argument("--in", dest="input", metavar="PATH",
                        default=None,
                        help="existing .rser to inspect (stats/diff; "
                             "default: --out)")
    series.add_argument("--from", dest="diff_from", type=int,
                        default=0, metavar="K",
                        help="diff baseline release (default: 0)")
    series.add_argument("--to", dest="diff_to", type=int, default=None,
                        metavar="K",
                        help="diff target release (default: newest)")
    series.add_argument("--dimension", default="syscall",
                        help="API dimension to diff "
                             "(default: syscall)")
    series.add_argument("--weighted", action="store_true",
                        help="diff popcon-weighted importance instead "
                             "of package-count usage")
    series.add_argument("--limit", type=int, default=10, metavar="N",
                        help="risers/fallers to print (default: 10)")
    series.add_argument("--deps", action="store_true",
                        help="stats: also materialize every release "
                             "and report per-release drift of virtual "
                             "packages, provider edges, and "
                             "alternative groups")

    serve = sub.add_parser(
        "serve", help="keep the analyzed dataset warm behind an HTTP "
                      "query API (importance, completeness, advisor, "
                      "...)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8000,
                       help="bind port; 0 lets the kernel pick "
                            "(default: 8000)")
    serve.add_argument("--workers", type=_job_count, default=1,
                       metavar="N",
                       help="worker processes; N>1 pre-forks N "
                            "workers sharing one port (SO_REUSEPORT "
                            "where available, inherited socket "
                            "otherwise), each mmap-loading the same "
                            ".rsnap snapshot; SIGHUP hot-reloads the "
                            "snapshot across the fleet (default: 1)")
    serve.add_argument("--cache-entries", type=int, default=1024,
                       metavar="N",
                       help="result-cache capacity (default: 1024)")
    serve.add_argument("--cache-ttl", type=float, default=None,
                       metavar="SECONDS",
                       help="result-cache time-to-live "
                            "(default: no TTL)")
    serve.add_argument("--concurrency", type=int, default=0,
                       metavar="N",
                       help="execution slots; 0 means --jobs when "
                            "--jobs > 1, else 8 (default: 0)")
    serve.add_argument("--max-wait-ms", type=int, default=250,
                       metavar="MS",
                       help="bounded wait for a slot before shedding "
                            "with 429 (default: 250)")
    serve.add_argument("--deadline-ms", type=int, default=2000,
                       metavar="MS",
                       help="per-request compute budget; 0 disables "
                            "(default: 2000)")
    serve.add_argument("--no-reload", action="store_true",
                       help="disable the POST /admin/reload endpoint")
    serve.add_argument("--series", metavar="PATH", default=None,
                       help="serve a .rser release train instead of "
                            "analyzing a corpus: ?release= time-travel "
                            "queries plus /v1/trend/* and "
                            "/v1/release/diff (no analysis run)")
    serve.add_argument("--tenant", metavar="NAME=PATH",
                       action="append", default=None,
                       help="mount an extra snapshot or series under "
                            "?tenant=NAME (repeatable); each tenant "
                            "hot-reloads independently")
    return parser


def _study_for(args: argparse.Namespace) -> Study:
    return Study.default(EcosystemConfig(
        n_filler_packages=args.fillers,
        n_driver_packages=args.drivers,
        n_script_packages=args.scripts,
        seed=args.seed,
    ), jobs=args.jobs, cache_dir=args.cache_dir,
       strict=args.strict, max_failures=args.max_failures)


def _export_observability(study: Study,
                          args: argparse.Namespace) -> None:
    """Honor ``--trace-out`` / ``--metrics-out`` for the study run."""
    if not (args.trace_out or args.metrics_out):
        return
    from .obs import write_metrics, write_trace
    stats = study.result.engine_stats
    if args.trace_out:
        count = write_trace(
            args.trace_out, stats.tracer.finished(),
            meta={"backend": stats.backend, "jobs": stats.jobs})
        print(f"trace written to {args.trace_out} ({count} spans)",
              file=sys.stderr)
    if args.metrics_out:
        write_metrics(args.metrics_out, stats.registry)
        print(f"metrics written to {args.metrics_out}",
              file=sys.stderr)


_DEFAULT_OUT = {"json": "dataset.json", "binary": "dataset.rsnap"}


def _format_for(path: Optional[str],
                fallback: Optional[str] = None) -> Optional[str]:
    """Infer a snapshot format from a destination suffix."""
    if path is None:
        return fallback
    return "binary" if path.endswith(".rsnap") else (
        "json" if path.endswith(".json") else fallback)


def _convert_dataset(args: argparse.Namespace) -> int:
    """``dataset convert``: transcode JSON <-> ``.rsnap`` in place.

    No ecosystem build or analysis runs; the snapshot is the sole
    input.  The source format is sniffed from its first bytes, and
    either direction round-trips bit-identically (the formats persist
    the same interned state).
    """
    import pathlib

    from .dataset.codec import (dataset_from_json, dataset_to_json,
                                footprints_fingerprint)
    from .store import load_snapshot, sniff_format, write_snapshot
    if not args.input:
        print("dataset convert requires --in", file=sys.stderr)
        return EXIT_USAGE
    source = pathlib.Path(args.input)
    with source.open("rb") as handle:
        head = handle.read(8)
    in_format = ("binary" if sniff_format(head) == "rsnap"
                 else "json")
    out_format = args.format or _format_for(
        args.out, "json" if in_format == "binary" else "binary")
    if in_format == "binary":
        dataset = load_snapshot(source)
        fingerprint = dataset.source_fingerprint
    else:
        dataset = dataset_from_json(
            source.read_text(encoding="utf-8"))
        fingerprint = footprints_fingerprint(dataset)
    out = args.out or _DEFAULT_OUT[out_format]
    if out_format == "binary":
        written = write_snapshot(out, dataset, fingerprint)
    else:
        text = dataset_to_json(dataset)
        pathlib.Path(out).write_text(text, encoding="utf-8")
        written = len(text)
    print(f"converted {source} ({in_format}) -> {out} "
          f"({out_format}, {written} bytes, "
          f"fingerprint {fingerprint[:12]})")
    return EXIT_OK


def _series_command(args: argparse.Namespace) -> int:
    """``series build|stats|diff``: the longitudinal surface.

    ``build`` needs no prior analysis — it evolves a deterministic
    paper-scale corpus from the global ``--seed`` and persists it as
    one ``.rser``; ``stats`` and ``diff`` only read an existing file.
    """
    from .series import load_series, write_series

    if args.action == "build":
        from .synth import EvolutionConfig, evolve_corpus
        from .synth.paper import PaperScaleConfig
        if args.releases < 1:
            print("series build requires --releases >= 1",
                  file=sys.stderr)
            return EXIT_USAGE
        config = EvolutionConfig(
            n_releases=args.releases,
            base=PaperScaleConfig.at_scale(args.scale,
                                           seed=args.seed),
            seed=args.seed)
        ecosystem = evolve_corpus(config)
        written = write_series(args.out, ecosystem.datasets())
        series = load_series(args.out)
        stats = series.stats()
        print(f"series written to {args.out}: "
              f"{stats['n_releases']} releases, "
              f"{stats['n_packages'][0]} -> {stats['n_packages'][-1]} "
              f"packages, {written} bytes "
              f"(base {stats['base_bytes']}, "
              f"deltas {stats['delta_bytes']})")
        print(f"series fingerprint {stats['series_fingerprint'][:12]}")
        return EXIT_OK

    source = args.input or args.out
    series = load_series(source)
    if args.action == "stats":
        stats = series.stats()
        print(f"series file      : {source}")
        print(f"fingerprint      : {stats['series_fingerprint']}")
        print(f"releases         : {stats['n_releases']}")
        print(f"packages         : {stats['n_packages'][0]} -> "
              f"{stats['n_packages'][-1]}")
        print(f"file size        : {stats['file_size']} bytes")
        print(f"base snapshot    : {stats['base_bytes']} bytes")
        print(f"delta payload    : {stats['delta_bytes']} bytes")
        for release, size in sorted(
                stats["delta_bytes_per_release"].items()):
            print(f"  delta r{release:<4} : {size} bytes")
        if args.deps:
            print("dependency semantics drift:")
            for row in series.dependency_drift():
                print(f"  r{row['release']:<4} "
                      f"virtuals={row['n_virtual_packages']} "
                      f"provider_edges={row['n_provider_edges']} "
                      f"alternative_groups="
                      f"{row['n_alternative_groups']}")
        return EXIT_OK

    # diff
    to = (series.n_releases - 1 if args.diff_to is None
          else args.diff_to)
    diff = series.release_diff(args.diff_from, to,
                               dimension=args.dimension,
                               weighted=args.weighted)
    kind = "importance" if args.weighted else "usage"
    print(f"release {args.diff_from} -> {to} "
          f"({args.dimension} {kind}, "
          f"noise floor {diff.noise_floor:.0%})")
    for title, deltas in (("risers", diff.risers(args.limit)),
                          ("fallers", diff.fallers(args.limit))):
        print(f"{title}:")
        if not deltas:
            print("  (none above the noise floor)")
        for delta in deltas:
            print(f"  {delta.api:<24} {delta.before:>8.2%} -> "
                  f"{delta.after:>8.2%}  ({delta.delta:+.2%})")
    migrated = diff.migrated_pairs()
    if migrated:
        print("migrations in progress:")
        for verdict in migrated:
            print(f"  {verdict.legacy} -> {verdict.preferred} "
                  f"({verdict.legacy_delta:+.2%} / "
                  f"{verdict.preferred_delta:+.2%})")
    return EXIT_OK


def _parse_tenants(specs: Optional[List[str]]) -> Dict[str, str]:
    """``--tenant NAME=PATH`` flags -> an ordered mapping."""
    tenants: Dict[str, str] = {}
    for spec in specs or []:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            raise ValueError(
                f"--tenant expects NAME=PATH, got {spec!r}")
        if name in tenants:
            raise ValueError(f"duplicate tenant name {name!r}")
        tenants[name] = path
    return tenants


def _read_syscall_list(spec: str) -> List[str]:
    if spec.startswith("@"):
        with open(spec[1:], "r", encoding="utf-8") as handle:
            return [line.strip() for line in handle
                    if line.strip() and not line.startswith("#")]
    return [name.strip() for name in spec.split(",") if name.strip()]


def _serve_concurrency(args: argparse.Namespace) -> int:
    concurrency = args.concurrency
    if concurrency <= 0:
        concurrency = args.jobs if args.jobs > 1 else 8
    return concurrency


def _serve(study: Optional[Study], args: argparse.Namespace) -> int:
    """Run the long-lived query server until SIGINT/SIGTERM.

    SIGINT propagates as ``KeyboardInterrupt`` and exits 130 (the
    interrupt taxonomy); SIGTERM drains in-flight requests and exits
    0 — both paths stop accepting, join handler threads, and close
    the socket before returning.
    """
    import signal
    import threading

    try:
        tenants = _parse_tenants(args.tenant)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_USAGE

    if args.workers > 1:
        return _serve_multiworker(study, args, tenants)

    from .serve import (ServeApp, ServeServer, SnapshotHolder,
                        SnapshotRegistry, holder_from_file)
    if args.series is not None:
        registry = SnapshotRegistry.from_files(args.series,
                                               tenants=tenants)
    else:
        registry = SnapshotRegistry.of(SnapshotHolder(study.dataset))
        for name, path in tenants.items():
            registry.add(name, holder_from_file(path))
    app = ServeApp(
        registry,
        cache_entries=args.cache_entries,
        cache_ttl_seconds=args.cache_ttl,
        concurrency=_serve_concurrency(args),
        max_wait_seconds=args.max_wait_ms / 1000.0,
        deadline_seconds=(args.deadline_ms / 1000.0
                          if args.deadline_ms > 0 else None),
        allow_reload=not args.no_reload)
    server = ServeServer(app, host=args.host, port=args.port,
                         quiet=True)
    # Handler before the announce line: anyone scripting against the
    # announce may signal immediately after reading it, and the
    # default disposition would kill us mid-boot.
    terminated = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: terminated.set())
    if args.series is not None:
        # File-backed serving gets the same SIGHUP hot-reload verb as
        # the pre-fork fleet; the handler thread keeps the accept loop
        # responsive and a failed reload keeps the old generation.
        def _hup(*_):
            threading.Thread(target=_quiet_reload, args=(app,),
                             name="repro-serve-reload",
                             daemon=True).start()
        signal.signal(signal.SIGHUP, _hup)
    server.start()
    snapshot = app.holder.current()
    what = (f"{snapshot.n_releases} releases"
            if hasattr(snapshot, "n_releases")
            else f"{snapshot.packages} packages")
    if tenants:
        what += f" (+{len(tenants)} tenants)"
    print(f"serving {what} "
          f"(fingerprint {snapshot.fingerprint[:12]}) "
          f"on {server.url}", flush=True)
    try:
        # Timed wait so a signal delivered to a serving thread is
        # still handled promptly: the Python-level handler only runs
        # once the main thread wakes up.
        while not terminated.wait(0.2):
            pass
    finally:
        server.stop()
    return EXIT_OK


def _quiet_reload(app) -> None:
    """Best-effort reload for signal handlers (old snapshot survives)."""
    try:
        app.reload_from_source()
    except Exception as exc:
        print(f"reload failed: {exc}", file=sys.stderr, flush=True)


def _serve_multiworker(study: Optional[Study],
                       args: argparse.Namespace,
                       tenants: Dict[str, str]) -> int:
    """Pre-fork serving: supervisor + N workers over shared files.

    The dataset is exported once as a ``.rsnap`` into a scratch
    directory (a ``--series`` file is used in place, no export);
    every worker mmaps those same bytes, so the corpus occupies the
    page cache once regardless of fleet size.  SIGHUP fans a hot
    reload of every source-bound tenant out to every worker.
    """
    import os
    import shutil
    import signal
    import tempfile
    import threading

    from .serve import WorkerSettings, WorkerSupervisor

    scratch = None
    if args.series is not None:
        snapshot_path = args.series
        popcon = repository = None
        what = "release train"
    else:
        scratch = tempfile.mkdtemp(prefix="repro-serve-")
        snapshot_path = os.path.join(scratch, "dataset.rsnap")
        study.export_dataset(snapshot_path, format="binary")
        popcon, repository = study.popcon, study.repository
        what = f"{len(study.dataset.packages)} packages"
    if tenants:
        what += f" (+{len(tenants)} tenants)"
    supervisor = WorkerSupervisor(
        snapshot_path, workers=args.workers,
        host=args.host, port=args.port,
        popcon=popcon, repository=repository,
        settings=WorkerSettings(
            cache_entries=args.cache_entries,
            cache_ttl_seconds=args.cache_ttl,
            concurrency=_serve_concurrency(args),
            max_wait_seconds=args.max_wait_ms / 1000.0,
            deadline_seconds=(args.deadline_ms / 1000.0
                              if args.deadline_ms > 0 else None)),
        tenants=tenants,
        quiet=True)
    terminated = threading.Event()
    try:
        supervisor.start()
        supervisor.wait_until_ready()
        signal.signal(signal.SIGTERM, lambda *_: terminated.set())
        signal.signal(signal.SIGHUP,
                      lambda *_: supervisor.reload_all())
        print(f"serving {what} "
              f"({supervisor.mode}, {args.workers} workers) "
              f"on {supervisor.url}", flush=True)
        # Timed wait keeps the main thread responsive to SIGTERM and
        # SIGHUP even when the kernel hands the signal to another
        # thread (the Python handler runs in the main thread only).
        while not terminated.wait(0.2):
            pass
    finally:
        supervisor.stop()
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)
    return EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    """Parse and run, mapping failures onto the exit-code taxonomy.

    Argparse usage errors keep their conventional exit status 2;
    interrupts exit 130 with a one-line notice instead of a traceback;
    analysis faults and I/O errors exit 1 with the error message.
    """
    try:
        return _run(argv)
    except SystemExit as exc:  # argparse --help / usage errors
        code = exc.code
        if code is None:
            return EXIT_OK
        return code if isinstance(code, int) else EXIT_USAGE
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPT
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not our failure, but
        # the output is incomplete.
        return EXIT_FAILURE
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    except Exception as exc:
        from .engine.errors import classify_exception
        fault = classify_exception(exc, stage="cli")
        print(f"error ({fault.error_class}): {fault.message}",
              file=sys.stderr)
        return EXIT_FAILURE


def _run(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "cache":
        # Pure cache maintenance: no ecosystem build, no analysis.
        from .engine import ANALYSIS_VERSION, AnalysisCache
        if not args.cache_dir:
            print("the cache command requires --cache-dir",
                  file=sys.stderr)
            return 2
        cache = AnalysisCache(args.cache_dir)
        if args.action == "stats":
            print(f"cache directory  : {args.cache_dir}")
            print(f"analysis version : {ANALYSIS_VERSION}")
            print(f"cached records   : {cache.entry_count()}")
            print(f"size             : {cache.size_bytes()} bytes")
        else:
            print(f"removed {cache.clear()} cached records")
        return 0

    if args.command == "dataset" and args.action == "convert":
        # Pure snapshot transcoding: no ecosystem build, no analysis.
        return _convert_dataset(args)

    if args.command == "series":
        # Longitudinal series work is file/synth-backed: no analysis.
        return _series_command(args)

    if args.command == "serve" and args.series is not None:
        # Serving a prebuilt release train: no analysis run either.
        return _serve(None, args)

    study = _study_for(args)
    # The analysis ran inside the Study constructor, so the trace and
    # metrics are complete here whatever the subcommand does next.
    _export_observability(study, args)

    if args.command == "serve":
        return _serve(study, args)

    if args.command == "report":
        names = args.experiments or list(_EXPERIMENTS)
        unknown = [n for n in names if n not in _EXPERIMENTS]
        if unknown:
            print(f"unknown experiments: {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        save_dir = None
        if args.save:
            import pathlib
            save_dir = pathlib.Path(args.save)
            save_dir.mkdir(parents=True, exist_ok=True)
        for name in names:
            output = getattr(study, _EXPERIMENTS[name])()
            print(output.rendered)
            print()
            if save_dir is not None:
                (save_dir / f"{name}.txt").write_text(
                    output.rendered + "\n", encoding="utf-8")
        return 0

    if args.command == "dataset":
        if args.action == "stats":
            print(study.dataset_report().rendered)
        else:
            out_format = args.format or _format_for(args.out, "json")
            path = args.out or _DEFAULT_OUT[out_format]
            written = study.export_dataset(path, format=out_format)
            print(f"dataset snapshot written to {path} "
                  f"({out_format}, {written} bytes)")
        return 0

    if args.command == "seccomp":
        if args.package not in study.repository:
            print(f"unknown package: {args.package}", file=sys.stderr)
            return 2
        print(study.seccomp_policy(args.package).rendered)
        return 0

    if args.command == "evaluate":
        supported = _read_syscall_list(args.syscalls)
        completeness = weighted_completeness(
            supported, study.footprints, study.popcon,
            study.repository)
        print(f"supported syscalls : {len(supported)}")
        print(f"weighted completeness : {completeness:.4%}")
        return 0

    if args.command == "trace":
        if args.package not in study.repository:
            print(f"unknown package: {args.package}", file=sys.stderr)
            return 2
        trace = study.trace_package(args.package)
        print(trace.render(limit=args.limit))
        print(f"({len(trace.events)} events, "
              f"{trace.instructions_executed} instructions, "
              f"{len(trace.syscall_set())} distinct syscalls)")
        return 0

    if args.command == "identify":
        observed = _read_syscall_list(args.syscalls)
        index = study.signature_index()
        result = index.identify(observed)
        if result.exact:
            print(f"exact match: {result.exact}")
        elif result.exact_matches:
            print("exact signature shared by: "
                  + ", ".join(result.exact_matches))
        elif result.candidates:
            print("candidates (best first): "
                  + ", ".join(result.candidates))
        else:
            print("no package covers this observation")
        return 0

    if args.command == "disasm":
        from .analysis.binary import BinaryAnalysis
        from .x86.decoder import linear_sweep
        if args.package not in study.repository:
            print(f"unknown package: {args.package}", file=sys.stderr)
            return 2
        package = study.repository.get(args.package)
        elf_exes = [a for a in package.executables() if a.is_elf]
        if not elf_exes:
            print("package has no ELF executable", file=sys.stderr)
            return 2
        analysis = BinaryAnalysis.from_bytes(elf_exes[0].data)
        print(f"; {args.package}:{elf_exes[0].name}  "
              f"entry={analysis.entry_root():#x}  "
              f"needed={analysis.needed}")
        plt = analysis.elf.plt_map()
        count = 0
        for insn in linear_sweep(analysis.elf.text(),
                                 analysis.elf.text_vaddr()):
            note = ""
            if insn.target in plt:
                note = f"   ; -> {plt[insn.target]}@plt"
            print(f"{insn.address:#010x}  {insn.mnemonic()}{note}")
            count += 1
            if count >= args.limit:
                print("...")
                break
        return 0

    if args.command == "drift":
        from .metrics import UsageDiff
        from .syscalls.table import ALL_NAMES
        # Sharing --cache-dir between the two releases makes this the
        # paper's §2.4 incremental workflow: only binaries whose bytes
        # changed between releases are re-analyzed.
        future = Study.default(EcosystemConfig(
            n_filler_packages=args.fillers,
            n_driver_packages=args.drivers,
            n_script_packages=args.scripts,
            seed=args.seed,
            adoption_shift=args.shift,
        ), jobs=args.jobs, cache_dir=args.cache_dir,
           strict=args.strict, max_failures=args.max_failures)
        diff = UsageDiff(
            study.usage("syscall", universe=ALL_NAMES),
            future.usage("syscall", universe=ALL_NAMES))
        print(f"Release diff at {args.shift:.0%} migration")
        print("\nAPIs gaining users:")
        for delta in diff.risers(8):
            print(f"  {delta.api:16s} {delta.before:7.2%} -> "
                  f"{delta.after:7.2%}  ({delta.delta:+.2%})")
        print("\nAPIs losing users:")
        for delta in diff.fallers(8):
            print(f"  {delta.api:16s} {delta.before:7.2%} -> "
                  f"{delta.after:7.2%}  ({delta.delta:+.2%})")
        migrated = diff.migrated_pairs()
        print(f"\nmigrations detected: "
              f"{', '.join(v.legacy + '->' + v.preferred for v in migrated)}")
        return 0

    if args.command == "packages":
        for package in sorted(study.repository,
                              key=lambda p: p.name):
            probability = study.popcon.install_probability(package.name)
            print(f"{package.name:32s} {package.category:12s} "
                  f"installs={probability:.4f} "
                  f"artifacts={len(package.artifacts)}")
        return 0

    return 2


if __name__ == "__main__":
    sys.exit(main())
