"""Paper-scale corpus tier: the study's full population, synthesized
directly at the footprint level.

The generated-binary pipeline (:mod:`repro.synth.ecosystem` +
disassembly) tops out around a thousand packages in CI-friendly time —
three orders of magnitude below the archive the paper measured (30,976
packages shipping 66,275 binaries).  Snapshot-store and serving work
needs corpora at *that* scale, and needs them in seconds, so this
module skips binary generation entirely and synthesizes the dataset
substrate itself:

* **Archetype footprints.**  Real archives are heavily redundant —
  thousands of packages share near-identical API surfaces.  We draw a
  pool of ~96 archetype footprints from the calibration bands in
  :mod:`repro.synth.profiles` (indispensable syscalls always, the mid
  band at ~25%, the low band at ~4%, Table 3's unused calls never) and
  assign every package one of them.  Footprint *and* interned bitset
  objects are shared per archetype, so 30k packages cost ~100
  footprint constructions.
* **Realistic shape.**  ~8% of packages have empty footprints (docs,
  data), ~5% get a private variant of their archetype (a few extra
  mid/low calls), installation counts follow a Zipf popcon, and a
  skeleton dependency graph provides a library layer with fan-out
  1–8, occasional cycles, a sprinkle of ghost (dangling) dependencies,
  and repository-only packages the measurement never saw.
* **Precomputed interning.**  The :class:`repro.dataset.ApiSpace` and
  per-package bitsets are built from the archetype pool and passed
  straight into ``Dataset(space=, bitsets=)`` — no per-package
  re-interning.

Everything is deterministic in ``seed``; ``scale`` shrinks the corpus
proportionally for tests (``PaperScaleConfig.tiny()``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.footprint import Footprint
from ..dataset.bitset import BitsetFootprint
from ..dataset.core import ApiSpace, Dataset
from ..packages.package import Package
from ..packages.popcon import PopularityContest
from ..packages.repository import Repository
from . import profiles

#: The population the paper measured (§2): the Ubuntu 15.04 archive.
PAPER_PACKAGES = 30_976
PAPER_BINARIES = 66_275

_ARCHETYPES = 96
_EMPTY_FRACTION = 0.08      # doc/data packages with no executables
_VARIANT_FRACTION = 0.05    # packages with a private archetype variant
_LIBRARY_FRACTION = 0.04    # skeleton library layer
_GHOST_DEP_FRACTION = 0.005  # dangling Depends: edges (virtual pkgs)
_UNMEASURED_FRACTION = 0.01  # in the repository, not in the dataset
_CYCLE_STRIDE = 997          # every Nth app closes a dependency cycle

# Dependency-semantics profile (gated by
# PaperScaleConfig.dependency_semantics; the default corpus emits none
# of these, staying bit-identical to the pre-refactor generator):
_VIRTUAL_FRACTION = 0.25      # virtual names per library count
_ALTERNATIVE_FRACTION = 0.15  # apps whose first dep gains "| other"
_VIRTUAL_DEP_FRACTION = 0.10  # apps depending on a virtual name
_METAPACKAGE_FRACTION = 0.01  # task metapackages (alternative groups)


@dataclass(frozen=True)
class PaperScaleConfig:
    """Size and determinism knobs for the paper-scale corpus."""

    n_packages: int = PAPER_PACKAGES
    n_binaries: int = PAPER_BINARIES
    seed: int = 2016
    #: Emit metapackages, virtual (Provides:) packages, and ``a | b``
    #: alternative groups.  Off by default: the degenerate corpus is
    #: bit-identical to the pre-refactor generator (the extra draws
    #: come from an independently seeded stream).
    dependency_semantics: bool = False

    @classmethod
    def at_scale(cls, scale: float, seed: int = 2016,
                 dependency_semantics: bool = False,
                 ) -> "PaperScaleConfig":
        """A proportionally shrunk corpus (``scale=1`` is the paper)."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        n_packages = max(8, round(PAPER_PACKAGES * scale))
        n_binaries = max(n_packages, round(PAPER_BINARIES * scale))
        return cls(n_packages=n_packages, n_binaries=n_binaries,
                   seed=seed,
                   dependency_semantics=dependency_semantics)

    @classmethod
    def tiny(cls, seed: int = 2016,
             dependency_semantics: bool = False) -> "PaperScaleConfig":
        """A few hundred packages: test-suite sized."""
        return cls.at_scale(0.01, seed=seed,
                            dependency_semantics=dependency_semantics)


@dataclass
class PaperCorpus:
    """The built corpus: dataset + bindings + per-package binary counts."""

    config: PaperScaleConfig
    dataset: Dataset
    popcon: PopularityContest
    repository: Repository
    binaries_per_package: Dict[str, int] = field(default_factory=dict)

    @property
    def n_binaries(self) -> int:
        return sum(self.binaries_per_package.values())


def _archetype_footprints(rng: random.Random) -> List[Footprint]:
    """The shared footprint pool, banded per the calibration profiles."""
    indispensable = sorted(profiles.INDISPENSABLE_SYSCALLS)
    mid = sorted(profiles.MID_IMPORTANCE_SYSCALLS)
    low = sorted(profiles.LOW_IMPORTANCE_SYSCALLS)
    # Every archetype shares the base-runtime floor (§3.2): the closure
    # below which not even "hello world" runs.
    floor = tuple(indispensable[:40])
    ioctl_pool = ("TIOCGWINSZ", "TCGETS", "TCSETS", "FIONREAD",
                  "FIONBIO", "BLKGETSIZE64", "SIOCGIFFLAGS",
                  "SIOCGIFADDR", "TIOCSWINSZ", "TIOCGPGRP")
    fcntl_pool = ("F_GETFL", "F_SETFL", "F_GETFD", "F_SETFD",
                  "F_DUPFD", "F_SETLK", "F_GETLK", "F_SETLKW",
                  "F_DUPFD_CLOEXEC", "F_SETOWN")
    prctl_pool = ("PR_SET_NAME", "PR_SET_PDEATHSIG",
                  "PR_SET_NO_NEW_PRIVS", "PR_GET_NAME",
                  "PR_SET_SECCOMP", "PR_CAPBSET_READ")
    pseudo_pool = ("/dev/null", "/dev/tty", "/dev/urandom",
                   "/proc/self/exe", "/proc/cpuinfo", "/proc/meminfo",
                   "/proc/self/stat", "/proc/mounts", "/etc/passwd",
                   "/sys/devices/system/cpu", "/proc/net/tcp",
                   "/dev/ptmx")
    libc_base = tuple(dict.fromkeys(profiles.BASE_LIBC_IMPORTS))
    libc_extra = tuple(dict.fromkeys(profiles.COMMON_LIBC_IMPORTS))

    archetypes: List[Footprint] = []
    for _ in range(_ARCHETYPES):
        syscalls = set(floor)
        syscalls.update(rng.sample(
            indispensable, rng.randint(30, len(indispensable) // 2)))
        syscalls.update(s for s in mid if rng.random() < 0.25)
        syscalls.update(s for s in low if rng.random() < 0.04)
        libc = set(libc_base)
        libc.update(rng.sample(libc_extra,
                               rng.randint(4, len(libc_extra) // 2)))
        archetypes.append(Footprint.build(
            syscalls=syscalls,
            ioctls=rng.sample(ioctl_pool, rng.randint(0, 4)),
            fcntls=rng.sample(fcntl_pool, rng.randint(1, 5)),
            prctls=rng.sample(prctl_pool, rng.randint(0, 2)),
            pseudo_files=rng.sample(pseudo_pool, rng.randint(0, 5)),
            libc_symbols=libc,
            unresolved_sites=rng.choice((0, 0, 0, 0, 0, 0, 1, 2)),
        ))
    return archetypes


def _variant_of(base: Footprint, rng: random.Random) -> Footprint:
    """A private near-copy of ``base``: a few extra mid/low calls."""
    extras = rng.sample(sorted(profiles.MID_IMPORTANCE_SYSCALLS
                               | profiles.LOW_IMPORTANCE_SYSCALLS),
                        rng.randint(1, 3))
    return Footprint(
        syscalls=base.syscalls | frozenset(extras),
        ioctls=base.ioctls, fcntls=base.fcntls, prctls=base.prctls,
        pseudo_files=base.pseudo_files,
        libc_symbols=base.libc_symbols,
        unresolved_sites=base.unresolved_sites)


def build_paper_corpus(config: Optional[PaperScaleConfig] = None,
                       ) -> PaperCorpus:
    """Synthesize the corpus; O(archetypes + packages), seconds at
    full paper scale."""
    config = config or PaperScaleConfig()
    rng = random.Random(config.seed)
    archetypes = _archetype_footprints(rng)

    # Variant syscalls must be interned up front: the space is built
    # from the archetype pool, and strict interning would otherwise
    # reject a variant's extra calls.
    widened = archetypes + [Footprint.build(
        syscalls=(profiles.MID_IMPORTANCE_SYSCALLS
                  | profiles.LOW_IMPORTANCE_SYSCALLS))]
    space = ApiSpace.from_footprints(widened)
    archetype_bits = [space.intern(fp) for fp in archetypes]
    empty_bits = space.intern(Footprint.EMPTY)

    n_packages = config.n_packages
    n_libraries = max(1, round(n_packages * _LIBRARY_FRACTION))
    names = [f"plib-{i:05d}" for i in range(n_libraries)]
    names += [f"ppkg-{i:05d}" for i in range(n_packages - n_libraries)]

    # Archetype popularity is itself skewed: a few shapes (coreutils
    # clones, python scripts' interpreters) dominate the archive.
    weights = [1.0 / (rank + 1) for rank in range(len(archetypes))]

    footprints: Dict[str, Footprint] = {}
    bitsets: List[BitsetFootprint] = []
    for name in names:
        roll = rng.random()
        if roll < _EMPTY_FRACTION:
            footprints[name] = Footprint.EMPTY
            bitsets.append(empty_bits)
            continue
        index = rng.choices(range(len(archetypes)), weights)[0]
        if roll < _EMPTY_FRACTION + _VARIANT_FRACTION:
            variant = _variant_of(archetypes[index], rng)
            footprints[name] = variant
            bitsets.append(space.intern(variant))
        else:
            footprints[name] = archetypes[index]
            bitsets.append(archetype_bits[index])

    # --- skeleton dependency graph -------------------------------------
    # The dependency-semantics profile draws from its own stream so the
    # degenerate corpus (the default) consumes exactly the same draws
    # from ``rng`` as the pre-refactor generator.
    vrng = random.Random(f"repro.paper.depsem:{config.seed}")
    repository = Repository()
    libraries = names[:n_libraries]
    provides_of: Dict[str, List[str]] = {}
    virtuals: List[str] = []
    if config.dependency_semantics:
        for i in range(max(2, round(n_libraries * _VIRTUAL_FRACTION))):
            virtual = f"pvirt-{i:03d}"
            virtuals.append(virtual)
            providers = vrng.sample(
                libraries, min(vrng.randint(1, 3), n_libraries))
            for provider in providers:
                provides_of.setdefault(provider, []).append(virtual)
    for name in libraries:
        repository.add(Package(name=name, category="library",
                               provides=provides_of.get(name, [])))
    ghost_count = 0
    for position, name in enumerate(names[n_libraries:]):
        depends = rng.sample(libraries,
                             min(rng.randint(1, 8), n_libraries))
        first_library = depends[0]
        if config.dependency_semantics:
            if n_libraries > 1 and vrng.random() < _ALTERNATIVE_FRACTION:
                alternative = vrng.choice(
                    [lib for lib in libraries if lib != first_library])
                depends[0] = f"{first_library} | {alternative}"
            if virtuals and vrng.random() < _VIRTUAL_DEP_FRACTION:
                depends.append(vrng.choice(virtuals))
        if rng.random() < _GHOST_DEP_FRACTION:
            depends.append(f"ghost-{ghost_count:04d}")
            ghost_count += 1
        repository.add(Package(name=name, category="app",
                               depends=depends))
        if _CYCLE_STRIDE and position % _CYCLE_STRIDE == 0:
            # Close a lib -> app edge: APT permits dependency cycles
            # and the condensed graph must cope at scale.
            repository.get(first_library).depends.append(name)
    for i in range(max(1, round(n_packages * _UNMEASURED_FRACTION))):
        repository.add(Package(name=f"pdoc-{i:04d}", category="doc",
                               depends=[rng.choice(libraries)]))
    if config.dependency_semantics:
        # Task metapackages: repository-only bundles whose Depends:
        # lines are pure alternative groups (think "mail-server" or
        # "task-desktop"), the pattern debootstrap-style AND-only
        # resolvers mishandle.
        for i in range(max(1, round(n_packages * _METAPACKAGE_FRACTION))):
            groups = []
            for _ in range(vrng.randint(2, 4)):
                alternatives = vrng.sample(
                    libraries, min(2, n_libraries))
                groups.append(" | ".join(alternatives))
            if virtuals:
                groups.append(vrng.choice(virtuals))
            repository.add(Package(name=f"pmeta-{i:03d}",
                                   category="metapackage",
                                   depends=groups))

    popcon = PopularityContest.synthesize(
        [package.name for package in repository],
        essential=libraries[:max(1, n_libraries // 8)],
        seed=config.seed)

    dataset = Dataset(footprints, popcon=popcon,
                      repository=repository, space=space,
                      bitsets=bitsets)

    # --- binaries per package ------------------------------------------
    # Every measured, non-empty package ships at least one executable;
    # the surplus lands Zipf-ishly on the busiest packages.
    carriers = [name for name in names
                if footprints[name] is not Footprint.EMPTY]
    binaries = {name: 1 for name in carriers}
    surplus = max(0, config.n_binaries - len(carriers))
    heavy = carriers[:max(1, len(carriers) // 10)]
    for _ in range(surplus):
        binaries[rng.choice(heavy)] += 1
    return PaperCorpus(config=config, dataset=dataset, popcon=popcon,
                       repository=repository,
                       binaries_per_package=binaries)
