"""Deterministic ELF fault injection for robustness testing.

The paper's corpus of 66k real binaries inevitably contains truncated
downloads, images damaged in transit, and adversarially weird files.
This module reproduces those failure shapes on demand: each *mutation*
takes the bytes of a valid synthesized ELF and damages them in one
specific, reproducible way.  The corrupt corpus drives the engine's
quarantine tests and the robustness benchmark — every mutation class
must yield a quarantine entry, never an abort.

Mutation classes (name → what the damaged image looks like):

* ``truncate_header``     — cut mid-ELF-header (interrupted download);
* ``truncate_tail``       — cut at ~55% (section bodies missing);
* ``wrong_class``         — ``EI_CLASS`` claims ELFCLASS32;
* ``shoff_beyond_eof``    — ``e_shoff`` points past end-of-file;
* ``phoff_beyond_eof``    — ``e_phoff`` points past end-of-file;
* ``shentsize_lie``       — absurd ``e_shentsize`` (header stride lie);
* ``entry_outside_text``  — ``e_entry`` points at unmapped memory;
* ``garbage_code``        — ``.text`` bytes replaced with seeded noise.

The first six are *format* faults (the reader rejects the image); the
last two parse fine and are only caught by decode-stage validation
(:func:`repro.engine.errors.validate_analysis`).

Everything here is deterministic: the same input bytes, mutation name,
and seed produce the same corrupt image.
"""

from __future__ import annotations

import random
import struct
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..elf.reader import ElfReader
from ..packages.package import BinaryArtifact, BinaryKind, Package
from ..packages.repository import Repository

# ELF64 header field offsets (see repro.elf.structs.ElfHeader.pack).
_EI_CLASS = 4
_E_ENTRY = 24     # <Q
_E_PHOFF = 32     # <Q
_E_SHOFF = 40     # <Q
_E_SHENTSIZE = 58  # <H

#: Name of the package that :func:`inject_corrupt_package` adds.
CORRUPT_PACKAGE = "corrupt-corpus"


def _patch(data: bytes, offset: int, fmt: str, value: int) -> bytes:
    blob = bytearray(data)
    struct.pack_into(fmt, blob, offset, value)
    return bytes(blob)


def truncate_header(data: bytes, seed: int = 0) -> bytes:
    """Cut inside the ELF header itself (valid magic, nothing else)."""
    return data[:18]


def truncate_tail(data: bytes, seed: int = 0) -> bytes:
    """Cut the image at ~55% — headers intact, bodies missing."""
    return data[:max(64, int(len(data) * 0.55))]


def wrong_class(data: bytes, seed: int = 0) -> bytes:
    """Lie in ``EI_CLASS``: claim a 32-bit image."""
    blob = bytearray(data)
    blob[_EI_CLASS] = 1  # ELFCLASS32
    return bytes(blob)


def shoff_beyond_eof(data: bytes, seed: int = 0) -> bytes:
    """Point ``e_shoff`` past end-of-file."""
    return _patch(data, _E_SHOFF, "<Q", len(data) + 4096)


def phoff_beyond_eof(data: bytes, seed: int = 0) -> bytes:
    """Point ``e_phoff`` past end-of-file."""
    return _patch(data, _E_PHOFF, "<Q", len(data) + 4096)


def shentsize_lie(data: bytes, seed: int = 0) -> bytes:
    """Claim an absurd section-header stride."""
    return _patch(data, _E_SHENTSIZE, "<H", 0xFFF0)


def entry_outside_text(data: bytes, seed: int = 0) -> bytes:
    """Point ``e_entry`` at unmapped memory (parses; fails decode)."""
    return _patch(data, _E_ENTRY, "<Q", 0xDEAD0000)


def garbage_code(data: bytes, seed: int = 0) -> bytes:
    """Replace ``.text`` with seeded noise (parses; fails decode)."""
    reader = ElfReader(data)
    section = reader.section(".text")
    if section is None:
        raise ValueError("seed image has no .text section")
    rng = random.Random(seed)
    noise = bytes(rng.randrange(256) for _ in range(section.sh_size))
    blob = bytearray(data)
    blob[section.sh_offset:section.sh_offset + section.sh_size] = noise
    return bytes(blob)


#: All mutation classes, in stable display order.
MUTATIONS: Dict[str, Callable[[bytes, int], bytes]] = {
    "truncate_header": truncate_header,
    "truncate_tail": truncate_tail,
    "wrong_class": wrong_class,
    "shoff_beyond_eof": shoff_beyond_eof,
    "phoff_beyond_eof": phoff_beyond_eof,
    "shentsize_lie": shentsize_lie,
    "entry_outside_text": entry_outside_text,
    "garbage_code": garbage_code,
}

#: Mutations that the decode stage (not the ELF reader) must catch.
DECODE_MUTATIONS = ("entry_outside_text", "garbage_code")


def corrupt(data: bytes, mutation: str, seed: int = 0) -> bytes:
    """Apply one named mutation to a valid ELF image."""
    try:
        fn = MUTATIONS[mutation]
    except KeyError:
        raise ValueError(
            f"unknown mutation {mutation!r}; choose from "
            f"{tuple(MUTATIONS)}") from None
    return fn(data, seed)


def all_corruptions(data: bytes, seed: int = 0,
                    mutations: Optional[Iterable[str]] = None,
                    ) -> Dict[str, bytes]:
    """Every mutation of one image: mutation name → corrupt bytes."""
    names = tuple(mutations) if mutations is not None else tuple(
        MUTATIONS)
    return {name: corrupt(data, name, seed) for name in names}


def corrupt_artifacts(data: bytes, seed: int = 0,
                      mutations: Optional[Iterable[str]] = None,
                      ) -> List[BinaryArtifact]:
    """One executable artifact per mutation class.

    The artifacts keep their ELF kind — the scan stage classifies by
    kind, not by magic, exactly like a package manifest would — so each
    one is submitted to the engine and must be quarantined there.
    """
    return [
        BinaryArtifact(name=f"bin/corrupt-{name}",
                       kind=BinaryKind.ELF_EXECUTABLE,
                       data=blob)
        for name, blob in all_corruptions(data, seed, mutations).items()
    ]


def inject_corrupt_package(repository: Repository,
                           source: Optional[bytes] = None,
                           seed: int = 0,
                           mutations: Optional[Iterable[str]] = None,
                           ) -> Tuple[str, List[str]]:
    """Seed a repository with a package of corrupted binaries.

    ``source`` supplies the pristine image to damage; when omitted, the
    first ELF executable found in the repository is used.  Returns the
    package name and the list of corrupt artifact names (one per
    mutation class — 8 by default, comfortably past the ≥5 the
    acceptance criteria require).
    """
    if source is None:
        for package in repository:
            for artifact in package.executables():
                if artifact.is_elf:
                    source = artifact.data
                    break
            if source is not None:
                break
    if source is None:
        raise ValueError("repository has no ELF executable to corrupt")
    artifacts = corrupt_artifacts(source, seed, mutations)
    repository.add(Package(
        name=CORRUPT_PACKAGE,
        category="adversarial",
        artifacts=artifacts,
        description="fault-injected binaries (robustness corpus)"))
    return CORRUPT_PACKAGE, [a.name for a in artifacts]
