"""Calibration profiles for the synthetic ecosystem.

The paper measures *how* the Ubuntu archive uses each API; this module
encodes those published measurements as generation targets, so the
synthetic archive reproduces the distributions without fabricating the
analysis itself: binaries are generated from these plans, and the
pipeline must recover the numbers by actually disassembling them.

Three kinds of plans live here:

* **band plans** — which importance band each API should land in
  (Figure 2's 224-indispensable head, the 33-strong middle, the
  44-strong low tail, the 18 unused calls of Table 3; Figure 7's libc
  bands);
* **anchor packages** — packages the paper names (Table 1, Table 2,
  qemu, kexec-tools, libnuma, …) with pinned installation rates;
* **category templates** — realistic application archetypes whose
  symbol/variant usage probabilities come straight from the paper's
  unweighted tables (Tables 8–11).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Tuple

from ..libc import symbols as LS
from ..syscalls import table as ST

# ---------------------------------------------------------------------------
# Syscall importance bands (Figure 2 / Tables 1-3)
# ---------------------------------------------------------------------------

# Table 3 — the 18 system calls no binary in the archive uses.
UNUSED_SYSCALLS: FrozenSet[str] = frozenset({
    # retired / no entry point on x86-64
    "set_thread_area", "get_thread_area", "tuxcall", "create_module",
    "get_kernel_syms", "query_module", "getpmsg", "putpmsg",
    "epoll_ctl_old", "epoll_wait_old",
    # live but unused by applications
    "sysfs", "rt_tgsigqueueinfo", "get_robust_list",
    "remap_file_pages", "mq_notify", "lookup_dcookie",
    "restart_syscall", "move_pages",
})

UNUSED_SYSCALL_REASONS: Dict[str, str] = {
    "set_thread_area": "Officially retired.",
    "get_thread_area": "Officially retired.",
    "tuxcall": "Officially retired.",
    "create_module": "Officially retired.",
    "get_kernel_syms": "Officially retired.",
    "query_module": "Officially retired.",
    "getpmsg": "Officially retired.",
    "putpmsg": "Officially retired.",
    "epoll_ctl_old": "Officially retired.",
    "epoll_wait_old": "Officially retired.",
    "sysfs": "Replaced by /proc/filesystems.",
    "rt_tgsigqueueinfo": "Unused by applications.",
    "get_robust_list": "Unused by applications.",
    "remap_file_pages": "Repeated mmap calls preferred.",
    "mq_notify": "Unused: asynchronous message delivery.",
    "lookup_dcookie": "Unused: for profiling.",
    "restart_syscall": "Transparent to applications.",
    "move_pages": "Unused: for NUMA usage.",
}

# Low band (0% < importance < 10%), 44 calls: special-purpose calls
# plus the five officially-retired calls old utilities still attempt.
LOW_IMPORTANCE_SYSCALLS: FrozenSet[str] = frozenset({
    # retired but still attempted for backward compatibility (§3.1)
    "uselib", "nfsservctl", "afs_syscall", "vserver", "security",
    "_sysctl",
    # kexec / boot
    "kexec_load", "kexec_file_load",
    # POSIX mqueues (System V preferred, §3.1)
    "mq_open", "mq_unlink", "mq_timedsend", "mq_timedreceive",
    "mq_getsetattr",
    # linux-aio
    "io_setup", "io_destroy", "io_getevents", "io_submit", "io_cancel",
    # scheduling / introspection extensions
    "seccomp", "sched_setattr", "sched_getattr", "getcpu", "kcmp",
    "process_vm_readv", "process_vm_writev", "bpf", "execveat",
    # NUMA
    "migrate_pages", "set_mempolicy", "get_mempolicy",
    # atomic directory-race variants, slow adoption (§5, Table 8)
    "faccessat", "fchmodat", "fchownat", "renameat", "renameat2",
    "readlinkat", "mkdirat", "mknodat", "symlinkat", "linkat",
    "futimesat", "name_to_handle_at", "open_by_handle_at",
    # misc
    "clock_adjtime", "epoll_pwait", "pselect6", "modify_ldt",
    # superseded originals: libc wrappers call the newer variant, so
    # the old syscall number is nearly dead (Table 9)
    "fork", "creat", "eventfd", "signalfd", "getdents64", "tkill",
    "sync_file_range",
})

# Middle band (10% <= importance < 100%), 33 calls.
MID_IMPORTANCE_SYSCALLS: FrozenSet[str] = frozenset({
    # Table 1 library-bound calls
    "mbind", "add_key", "request_key", "keyctl", "preadv", "pwritev",
    # module / system administration on a minority of installs
    "init_module", "finit_module", "delete_module", "acct",
    "swapon", "swapoff", "reboot", "sethostname", "setdomainname",
    "settimeofday", "adjtimex", "pivot_root", "ptrace", "syslog",
    "vhangup", "quotactl", "ustat", "perf_event_open", "readahead",
    "unshare", "setns", "fanotify_init", "fanotify_mark", "ioprio_set",
    "ioprio_get", "tee", "waitid",
})

INDISPENSABLE_SYSCALLS: FrozenSet[str] = frozenset(
    s.name for s in ST.SYSCALLS
) - UNUSED_SYSCALLS - LOW_IMPORTANCE_SYSCALLS - MID_IMPORTANCE_SYSCALLS


def band_of_syscall(name: str) -> str:
    if name in UNUSED_SYSCALLS:
        return "unused"
    if name in LOW_IMPORTANCE_SYSCALLS:
        return "low"
    if name in MID_IMPORTANCE_SYSCALLS:
        return "mid"
    return "indispensable"


# ---------------------------------------------------------------------------
# libc importance bands (Figure 7, §3.5, §6)
# ---------------------------------------------------------------------------

# Fractions measured by the paper over 1,274 exported functions.
LIBC_BAND_FRACTIONS: Dict[str, float] = {
    "t100": 0.428,   # importance ~100%
    "t50": 0.066,    # [50%, 100%)
    "t10": 0.109,    # [1%, 50%)
    "t1": 0.223,     # (0%, 1%)
    "t0": 0.174,     # unused (222 of 1,274, §6)
}

_TIER_RANK = {"universal": 0, "common": 1, "occasional": 2,
              "rare": 3, "unused": 4}


def _stable_fraction(name: str) -> float:
    digest = hashlib.sha256(name.encode()).digest()
    return int.from_bytes(digest[:8], "little") / 2.0 ** 64


_BAND_ORDER = ("t100", "t50", "t10", "t1", "t0")
_BAND_RANK = {band: rank for rank, band in enumerate(_BAND_ORDER)}


def _symbol_band_cap(symbol: "LS.LibcSymbol",
                     closure: Dict[str, FrozenSet[str]]) -> str:
    """Highest band a symbol may occupy without dragging a mid/low-band
    *syscall* above its own band.

    A symbol attached to always-installed packages pulls its entire
    syscall closure to ~100% importance; a symbol whose closure touches
    a mid-band syscall therefore tops out at t50, and one touching a
    low-band syscall at t1.
    """
    cap = "t100"
    for syscall_name in closure.get(symbol.name, ()):
        band = band_of_syscall(syscall_name)
        if band == "low":
            return "t1"
        if band == "mid":
            cap = "t50"
    return cap


def libc_band_plan() -> Dict[str, str]:
    """Assign every libc symbol to an importance band.

    Symbols are ranked by their catalogue tier (a realism prior: stdio
    before Sun RPC), ties broken by a stable hash, and the ranking is
    cut at the paper's band fractions — subject to per-symbol caps
    derived from the syscall bands their closures touch.
    """
    closure = LS.syscall_footprint_closure()
    ordered = sorted(
        LS.LIBC_SYMBOLS,
        key=lambda s: (_TIER_RANK[s.tier], _stable_fraction(s.name)))
    total = len(ordered)
    quotas = {band: int(round(LIBC_BAND_FRACTIONS[band] * total))
              for band in _BAND_ORDER}
    caps = {s.name: _symbol_band_cap(s, closure) for s in ordered}

    plan: Dict[str, str] = {}
    remaining = list(ordered)
    for band in _BAND_ORDER:
        quota = quotas[band]
        assigned = 0
        kept = []
        for symbol in remaining:
            eligible = _BAND_RANK[caps[symbol.name]] <= _BAND_RANK[band]
            if assigned < quota and eligible:
                plan[symbol.name] = band
                assigned += 1
            else:
                kept.append(symbol)
        remaining = kept
    for symbol in remaining:  # rounding remainder: lowest used band
        plan[symbol.name] = "t1"
    return plan


# Symbols every dynamically linked binary imports (crt + base runtime).
# Their syscall closure is the ~40-call floor below which not even
# "hello world" runs (§3.2, Figure 8).
BASE_LIBC_IMPORTS: Tuple[str, ...] = (
    "__libc_start_main", "__cxa_atexit", "__cxa_finalize",
    "__errno_location", "__stack_chk_fail", "exit", "abort",
    "malloc", "free", "calloc", "realloc", "memalign",
    "memcpy", "memset", "memcmp", "strlen", "strcmp", "strncmp",
    "strcpy", "strchr", "strdup",
    "printf", "fprintf", "vfprintf", "snprintf", "puts",
    "__printf_chk", "__memcpy_chk", "__stack_chk_fail",
    "fopen", "fclose", "fread", "fwrite", "fflush",
    "getenv", "open", "close", "read", "write", "lseek", "fstat",
    "dup2", "mmap", "munmap",
)

# Symbols most — but not all — programs link; attached to essential
# packages and to fillers with high probability.  Their closures fill
# Figure 8's "used by at least 10% of packages" middle.
COMMON_LIBC_IMPORTS: Tuple[str, ...] = (
    "putchar", "fputs", "fgets", "atoi", "strtol", "qsort", "stat",
    "getcwd", "ioctl", "isatty", "fcntl", "getpid", "kill",
    "sigaction", "getuid", "unlink", "readdir", "opendir", "closedir",
    "mprotect", "sprintf", "sscanf", "strrchr", "strstr", "strtok",
    "strncpy", "strcat", "strerror", "time", "localtime", "umask",
    "getopt", "setvbuf", "perror", "gettimeofday",
)
COMMON_IMPORT_PROB = 0.85

# ---------------------------------------------------------------------------
# Variant usage probabilities (Tables 8-11, unweighted importance)
# ---------------------------------------------------------------------------

# Probability that a generic (filler) package imports the wrapper.
# Values are the paper's measured unweighted API importance.
VARIANT_IMPORT_PROBS: Dict[str, float] = {
    # Table 8 — ID management
    "setuid": 0.1567, "setreuid": 0.0188, "setresuid": 0.9968,
    "setgid": 0.1207, "setregid": 0.0124, "setresgid": 0.9968,
    "geteuid": 0.5515, "getresuid": 0.3619,
    "getegid": 0.4887, "getresgid": 0.3614,
    # Table 8 — directory race variants
    "access": 0.7424, "faccessat": 0.0063,
    "mkdir": 0.5207, "mkdirat": 0.0034,
    "rename": 0.4318, "renameat": 0.0030,
    "readlink": 0.4638, "readlinkat": 0.0050,
    "chown": 0.2459, "fchownat": 0.0023,
    "chmod": 0.3980, "fchmodat": 0.0013,
    # Table 9 — old vs. new
    "getdents64": 0.0008, "utime": 0.0857, "utimes": 0.1790,
    "fork": 0.0007, "vfork": 0.9968, "tkill": 0.0051, "tgkill": 0.9980,
    "wait4": 0.6056, "waitid": 0.0024,
    # Table 10 — Linux-specific vs. portable
    "preadv": 0.0015, "readv": 0.6223, "pwritev": 0.0016,
    "writev": 0.9980, "accept4": 0.0093, "accept": 0.2935,
    "ppoll": 0.0390, "poll": 0.7107, "recvmmsg": 0.0011,
    "recvmsg": 0.6882, "sendmmsg": 0.0517, "sendmsg": 0.4249,
    "pipe2": 0.4033, "pipe": 0.5033,
    # Table 11 — simple vs. powerful
    "pread64": 0.2723, "dup3": 0.0872, "dup": 0.6664,
    "recvfrom": 0.5380, "sendto": 0.7171, "select": 0.6153,
    "pselect": 0.0413, "chdir": 0.4461, "fchdir": 0.0220,
    # Common wrappers beyond the variant tables; rates chosen to
    # reproduce Figure 8's middle (about 130 syscalls used by >= 10%
    # of packages).
    "socket": 0.45, "connect": 0.42, "bind": 0.30, "listen": 0.25,
    "setsockopt": 0.35, "getsockopt": 0.28, "getsockname": 0.25,
    "getpeername": 0.18, "shutdown": 0.22, "socketpair": 0.15,
    "poll": 0.71, "epoll_create": 0.14, "epoll_create1": 0.16,
    "epoll_ctl": 0.18, "epoll_wait": 0.18, "eventfd": 0.12,
    "inotify_init": 0.11, "inotify_add_watch": 0.11,
    "nanosleep": 0.48, "clock_gettime": 0.55, "gettimeofday": 0.62,
    "setitimer": 0.20, "getitimer": 0.12, "timerfd_create": 0.11,
    "uname": 0.45, "sysinfo": 0.15, "sysconf": 0.55,
    "getrusage": 0.18, "getrlimit": 0.35, "setrlimit": 0.25,
    "getpriority": 0.13, "setpriority": 0.14, "sched_yield": 0.22,
    "sched_getaffinity": 0.13, "sched_setaffinity": 0.11,
    "waitpid": 0.52, "execve": 0.55, "execvp": 0.30, "system": 0.35,
    "alarm": 0.22, "pause": 0.12, "setsid": 0.20, "setpgid": 0.18,
    "getpgrp": 0.14, "umask": 0.38, "chroot": 0.11, "sync": 0.12,
    "ftruncate": 0.30, "truncate": 0.15, "fsync": 0.32,
    "fdatasync": 0.14, "flock": 0.24, "statfs": 0.20, "fstatfs": 0.14,
    "symlink": 0.25, "link": 0.20, "mknod": 0.10, "sendfile": 0.13,
    "madvise": 0.22, "mremap": 0.16, "msync": 0.12, "mlock": 0.10,
    "shmget": 0.14, "shmat": 0.14, "shmctl": 0.13, "semget": 0.12,
    "semop": 0.12, "msgget": 0.10,
    "sigaltstack": 0.15, "sigprocmask": 0.45, "sigpending": 0.10,
    "sigsuspend": 0.12, "getgroups": 0.16, "setgroups": 0.12,
    "capget": 0.11, "capset": 0.10, "personality": 0.10,
    "getsid": 0.10, "setfsuid": 0.08, "setfsgid": 0.08,
    "getxattr": 0.12, "setxattr": 0.10, "listxattr": 0.10,
    "fallocate": 0.11, "posix_fadvise": 0.12,
    "ptsname": 0.08, "tcgetattr": 0.25, "tcsetattr": 0.24,
    "getpwnam": 0.30, "getpwuid": 0.32, "getgrnam": 0.22,
    "getgrgid": 0.22, "getlogin": 0.12, "initgroups": 0.10,
    # glibc-internal stdio exports: getc()/putc() compile into
    # these; their absence from other libcs drives Table 7.
    "_IO_getc": 0.25, "_IO_putc": 0.20, "__uflow": 0.15,
    "__overflow": 0.15, "_IO_vfprintf": 0.10,
}

# ---------------------------------------------------------------------------
# Category templates for filler packages
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CategoryTemplate:
    """An application archetype used to generate filler packages."""

    name: str
    weight: float                      # share of filler packages
    libc_pool: Tuple[str, ...]         # candidate extra imports
    pool_draws: Tuple[int, int]        # min/max symbols drawn
    syscall_pool: Tuple[str, ...] = ()  # candidate direct syscalls
    direct_syscall_prob: float = 0.11  # §7: ~11% of binaries
    ioctl_pool: Tuple[str, ...] = ()
    fcntl_pool: Tuple[str, ...] = ()
    prctl_pool: Tuple[str, ...] = ()
    pseudo_pool: Tuple[str, ...] = ()
    pseudo_prob: float = 0.15
    script_fraction: float = 0.0      # extra script artifacts
    executables: Tuple[int, int] = (1, 3)
    use_variants: bool = True         # draw Tables 8-11 variant symbols
    use_common: bool = True           # attach COMMON_LIBC_IMPORTS


_STDIO_POOL = (
    "scanf", "sscanf", "sprintf", "vsnprintf", "getline", "getdelim",
    "setvbuf", "perror", "tmpfile", "popen", "pclose", "remove",
    "ferror", "feof", "rewind", "fseek", "ftell", "ungetc",
    "__fprintf_chk", "__sprintf_chk", "__snprintf_chk",
    "__strcpy_chk", "__strcat_chk", "__strncpy_chk",
)

_PROCESS_POOL = (
    "waitpid", "wait", "wait4", "execve", "execvp", "execl", "system",
    "raise", "sleep", "usleep", "nanosleep", "alarm", "setsid",
    "setpgid", "getppid", "getpgrp", "daemon", "vfork", "clone",
    "posix_spawn", "getrlimit", "setrlimit", "getrusage", "nice",
    "sched_yield", "gettid", "tgkill", "prctl",
)

_FILE_POOL = (
    "openat", "readdir", "opendir", "closedir", "scandir", "mkdir",
    "rmdir", "rename", "unlink", "symlink", "readlink", "chmod",
    "chown", "chdir", "utime", "utimes", "statfs", "truncate",
    "ftruncate", "fsync", "fdatasync", "flock", "lockf", "realpath",
    "mkstemp", "mkdtemp", "dup", "pipe", "pipe2", "sendfile",
    "pread64", "pwrite64", "readv", "writev", "getxattr", "setxattr",
    "listxattr", "fallocate", "posix_fadvise",
)  # note: preadv/pwritev stay out — Table 1 pins them to libc users


_NETWORK_POOL = (
    "socket", "connect", "bind", "listen", "accept", "accept4",
    "send", "sendto", "recv", "recvfrom", "sendmsg", "recvmsg",
    "getsockopt", "setsockopt", "getsockname", "getpeername",
    "shutdown", "select", "poll", "ppoll", "epoll_create",
    "epoll_create1", "epoll_ctl", "epoll_wait", "getaddrinfo",
    "getnameinfo", "gethostbyname", "inet_ntop", "inet_pton",
    "htons", "ntohs", "socketpair", "sendmmsg", "recvmmsg",
)

_TERMINAL_POOL = (
    "tcgetattr", "tcsetattr", "tcflush", "tcdrain", "cfmakeraw",
    "cfsetispeed", "cfsetospeed", "ttyname", "openpty", "posix_openpt",
    "grantpt", "unlockpt", "ptsname", "getpass",
)

_DESKTOP_POOL = (
    "setlocale", "nl_langinfo", "gettext", "dgettext", "bindtextdomain",
    "iconv_open", "iconv", "iconv_close", "mbstowcs", "wcstombs",
    "wcslen", "wcscmp", "wcscpy", "mbrtowc", "wcrtomb", "towupper",
    "iswalpha", "iswspace", "wcwidth", "regcomp", "regexec", "regfree",
    "fnmatch", "glob", "globfree",
)

_IDENTITY_POOL = (
    "getpwnam", "getpwuid", "getgrnam", "getgrgid", "getgroups",
    "initgroups", "setuid", "setgid", "seteuid", "setresuid",
    "setresgid", "getresuid", "getresgid", "geteuid", "getegid",
    "getlogin", "crypt", "getspnam", "setreuid", "setregid",
)

_TIME_POOL = (
    "time", "gettimeofday", "clock_gettime", "localtime", "gmtime",
    "mktime", "strftime", "strptime", "setitimer", "getitimer",
    "timerfd_create", "timerfd_settime", "difftime", "tzset",
)

_SYSADMIN_SYSCALL_POOL = (
    "mount", "umount2", "chroot", "sync", "sethostname", "swapon",
    "swapoff", "reboot", "init_module", "delete_module", "finit_module",
    "acct", "settimeofday", "adjtimex", "pivot_root", "syslog",
    "quotactl", "vhangup", "ustat", "ioprio_set", "ioprio_get",
    "ptrace", "perf_event_open", "readahead", "unshare", "setns",
    "fanotify_init", "fanotify_mark", "tee", "waitid", "setdomainname",
)

CATEGORY_TEMPLATES: Tuple[CategoryTemplate, ...] = (
    CategoryTemplate(
        # Trivial programs whose footprint is exactly the base runtime
        # closure — the packages stage I of Table 4 unlocks.
        name="trivial", weight=0.08,
        libc_pool=(), pool_draws=(0, 0),
        direct_syscall_prob=0.0, pseudo_prob=0.0,
        executables=(1, 1), use_variants=False, use_common=False,
    ),
    CategoryTemplate(
        name="cli-tool", weight=0.30,
        libc_pool=_STDIO_POOL + _FILE_POOL + _TIME_POOL,
        pool_draws=(4, 14),
        pseudo_pool=("/dev/null", "/dev/tty", "/proc/self/exe"),
        pseudo_prob=0.25,
    ),
    CategoryTemplate(
        name="daemon", weight=0.15,
        libc_pool=(_NETWORK_POOL + _PROCESS_POOL + _IDENTITY_POOL
                   + ("openlog", "syslog", "closelog", "epoll_wait")),
        pool_draws=(8, 22),
        syscall_pool=("epoll_wait", "epoll_ctl", "accept4", "signalfd4",
                      "eventfd2", "timerfd_create"),
        prctl_pool=("PR_SET_NAME", "PR_SET_PDEATHSIG",
                    "PR_SET_NO_NEW_PRIVS"),
        pseudo_pool=("/dev/null", "/proc/self/stat", "/proc/meminfo",
                     "/proc/net/tcp", "/dev/urandom"),
        pseudo_prob=0.4,
    ),
    CategoryTemplate(
        name="desktop-app", weight=0.20,
        libc_pool=(_DESKTOP_POOL + _STDIO_POOL + _TIME_POOL
                   + _NETWORK_POOL[:12]),
        pool_draws=(10, 26),
        pseudo_pool=("/dev/null", "/proc/cpuinfo", "/proc/meminfo",
                     "/dev/urandom", "/sys/devices/system/cpu"),
        pseudo_prob=0.3,
        executables=(1, 2),
    ),
    CategoryTemplate(
        name="devtool", weight=0.12,
        libc_pool=(_STDIO_POOL + _FILE_POOL + _PROCESS_POOL
                   + ("dlopen", "dlsym", "dlclose", "backtrace",
                      "mmap64", "ptrace")),
        pool_draws=(6, 18),
        syscall_pool=("ptrace", "process_vm_readv", "perf_event_open"),
        direct_syscall_prob=0.2,
        pseudo_pool=("/proc/%d/cmdline", "/proc/%d/stat",
                     "/proc/self/maps", "/proc/%d/status"),
        pseudo_prob=0.35,
    ),
    CategoryTemplate(
        name="terminal-app", weight=0.08,
        libc_pool=_TERMINAL_POOL + _STDIO_POOL + _PROCESS_POOL[:10],
        pool_draws=(5, 14),
        ioctl_pool=("TIOCGWINSZ", "TCGETS", "TCSETS", "TIOCSWINSZ",
                    "TIOCGPGRP", "TIOCSPGRP", "FIONREAD"),
        pseudo_pool=("/dev/tty", "/dev/ptmx", "/dev/pts",
                     "/dev/console"),
        pseudo_prob=0.5,
    ),
    CategoryTemplate(
        name="sysadmin", weight=0.08,
        libc_pool=_FILE_POOL + _IDENTITY_POOL + _PROCESS_POOL,
        pool_draws=(5, 16),
        syscall_pool=_SYSADMIN_SYSCALL_POOL,
        direct_syscall_prob=0.45,
        ioctl_pool=("BLKGETSIZE", "BLKSSZGET", "BLKGETSIZE64",
                    "BLKROGET", "SIOCGIFFLAGS", "SIOCGIFADDR",
                    "SIOCETHTOOL", "FIONBIO"),
        pseudo_pool=("/proc/mounts", "/proc/partitions", "/proc/swaps",
                     "/sys/block", "/proc/sys/kernel/hostname",
                     "/dev/sda", "/dev/hda"),
        pseudo_prob=0.55,
    ),
    CategoryTemplate(
        name="science", weight=0.07,
        libc_pool=(_STDIO_POOL + _TIME_POOL
                   + ("sched_setaffinity", "sched_getaffinity",
                      "getcpu", "pthread_create", "pthread_join",
                      "mmap64", "madvise", "mlock")),
        pool_draws=(4, 12),
        pseudo_pool=("/proc/cpuinfo", "/proc/meminfo",
                     "/sys/devices/system/cpu"),
        pseudo_prob=0.3,
    ),
)


def template_weights() -> List[Tuple[CategoryTemplate, float]]:
    total = sum(t.weight for t in CATEGORY_TEMPLATES)
    return [(t, t.weight / total) for t in CATEGORY_TEMPLATES]


# ---------------------------------------------------------------------------
# Interpreter mix (Figure 1)
# ---------------------------------------------------------------------------

# Fractions of all executables in the archive, from Figure 1.
INTERPRETER_MIX: Dict[str, float] = {
    "elf": 0.60,
    "dash": 0.15,
    "python": 0.09,
    "perl": 0.08,
    "bash": 0.06,
    "ruby": 0.01,
    "other": 0.01,
}

# Within ELF binaries (Figure 1 right): shared libraries vs. dynamic
# executables vs. static.
ELF_MIX: Dict[str, float] = {
    "shared-library": 0.52,
    "dynamic-executable": 0.48,
    "static": 0.0038,
}

INTERPRETER_PACKAGES: Dict[str, str] = {
    "dash": "dash",
    "bash": "bash",
    "python": "python2.7",
    "perl": "perl",
    "ruby": "ruby2.1",
    "other": "busybox",
}


# ---------------------------------------------------------------------------
# Adoption drift (release simulation)
# ---------------------------------------------------------------------------

# Pairs whose adoption can drift between simulated releases: the
# insecure/deprecated API loses users to its preferred variant.
DRIFT_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("access", "faccessat"),
    ("mkdir", "mkdirat"),
    ("rename", "renameat"),
    ("readlink", "readlinkat"),
    ("chown", "fchownat"),
    ("chmod", "fchmodat"),
    ("setuid", "setresuid"),
    ("utime", "utimes"),
    ("wait4", "waitid"),
    ("select", "pselect"),
    ("dup", "dup3"),
    ("accept", "accept4"),
    ("pipe", "pipe2"),
)


def shifted_variant_probs(shift: float) -> Dict[str, float]:
    """Variant-usage probabilities after ``shift`` of the legacy API's
    users migrate to the preferred variant.

    ``shift`` = 0 reproduces the paper's 2015 measurements; positive
    values simulate future releases (the outreach §6 argues the dataset
    enables); the paper's own observation is that this migration is
    otherwise glacial.
    """
    if not 0.0 <= shift <= 1.0:
        raise ValueError("shift must be within [0, 1]")
    table = dict(VARIANT_IMPORT_PROBS)
    for old, new in DRIFT_PAIRS:
        if old not in table:
            continue
        old_p = table[old]
        moved = old_p * shift
        table[old] = old_p - moved
        table[new] = min(1.0, table.get(new, 0.0) + moved)
    return table
