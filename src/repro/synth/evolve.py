"""Longitudinal ecosystem evolution: one corpus, N releases.

The paper measures a single archive snapshot and names the lack of
historical data as a limitation (§2.4); the Ubuntu dependency-evolution
study (PAPERS.md) shows what a release train actually does to an
archive: packages are added and retired, surviving packages' API
surfaces drift a few calls at a time, installation counts shift while
staying heavy-tailed, and the dependency skeleton churns around a
stable core of libraries.  This module reproduces exactly that motion
on top of the paper-scale corpus tier:

* **Release 0** is a plain :func:`repro.synth.build_paper_corpus`.
* **Every later release** mutates the previous one — a deterministic
  function of ``(seed, release index)``, so release k can always be
  rebuilt bit-identically from scratch:

  - ``drop_fraction`` of app packages are retired (libraries persist:
    real archives retire leaf packages far more often than their
    dependency core);
  - ``add_fraction`` new app packages appear, cloning (and sometimes
    drifting) the footprint of an existing package — archives grow by
    near-duplication, not invention;
  - ``drift_fraction`` of surviving non-empty packages gain one to
    three mid/low-importance syscalls and occasionally lose one —
    the per-release adoption creep Tables 8-11 track;
  - popcon counts take a multiplicative log-normal step on a churned
    subset (continuity: a popular package stays popular), dropped
    packages leave the survey, added packages join in the Zipf tail;
  - ``dep_churn`` of surviving apps re-roll their library dependencies
    (dangling edges onto dropped packages are left in place — real
    archives carry broken Depends: lines between releases).

**Canonical package order.**  Every release lists survivors in the
previous release's order and appends added packages at the end.  The
delta codec in :mod:`repro.series` relies on this rule to reconstruct
any release's package order (and therefore its bit-exact metric
results) from deltas alone.

All releases share release 0's interned :class:`repro.dataset.ApiSpace`
(drift draws only from the mid/low syscall pools the paper-scale space
already interns), so per-release bitsets are cheap and masks stay
directly comparable across releases.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.footprint import Footprint
from ..dataset.bitset import BitsetFootprint
from ..dataset.core import Dataset
from ..packages.package import Package
from ..packages.popcon import PopularityContest
from ..packages.repository import Repository
from . import profiles
from .paper import PaperCorpus, PaperScaleConfig, build_paper_corpus


@dataclass(frozen=True)
class EvolutionConfig:
    """Shape and determinism knobs for a multi-release evolution."""

    #: Releases to synthesize, including release 0.
    n_releases: int = 10
    #: The release-0 corpus (size, seed of the initial archive).
    base: PaperScaleConfig = field(
        default_factory=PaperScaleConfig.tiny)
    #: Seed of the *evolution* — independent of the base corpus seed so
    #: the same archive can be evolved down different timelines.
    seed: int = 2016
    #: Fraction of app packages retired per release.
    drop_fraction: float = 0.02
    #: Fraction of app packages (of the current size) added per release.
    add_fraction: float = 0.03
    #: Fraction of surviving non-empty packages whose footprint drifts.
    drift_fraction: float = 0.10
    #: Probability a surviving package's popcon count is re-sampled.
    popcon_churn: float = 0.25
    #: Log-normal sigma of the multiplicative popcon step.
    popcon_sigma: float = 0.35
    #: Fraction of surviving apps that re-roll their dependencies.
    dep_churn: float = 0.05

    def __post_init__(self) -> None:
        if self.n_releases < 1:
            raise ValueError("n_releases must be >= 1")
        for name in ("drop_fraction", "add_fraction", "drift_fraction",
                     "popcon_churn", "dep_churn"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1)")


@dataclass
class EcosystemRelease:
    """One release of an evolved ecosystem: a self-contained dataset."""

    index: int
    dataset: Dataset
    popcon: PopularityContest
    repository: Repository
    #: Bookkeeping for tests and reports.
    added: Tuple[str, ...] = ()
    dropped: Tuple[str, ...] = ()
    drifted: Tuple[str, ...] = ()


@dataclass
class EvolvedEcosystem:
    """The full release train, oldest first."""

    config: EvolutionConfig
    base_corpus: PaperCorpus
    releases: List[EcosystemRelease]

    @property
    def n_releases(self) -> int:
        return len(self.releases)

    def datasets(self) -> List[Dataset]:
        return [release.dataset for release in self.releases]


def _release_rng(seed: int, release: int) -> random.Random:
    """One deterministic stream per (evolution seed, release index)."""
    return random.Random(f"repro.evolve:{seed}:{release}")


def _drift_footprint(footprint: Footprint, pool: List[str],
                     rng: random.Random) -> Footprint:
    """A few extra mid/low syscalls, occasionally one removed."""
    syscalls = set(footprint.syscalls)
    syscalls.update(rng.sample(pool, rng.randint(1, 3)))
    removable = sorted(syscalls & set(pool))
    if removable and rng.random() < 0.5:
        syscalls.discard(rng.choice(removable))
    return Footprint(
        syscalls=frozenset(syscalls),
        ioctls=footprint.ioctls, fcntls=footprint.fcntls,
        prctls=footprint.prctls,
        pseudo_files=footprint.pseudo_files,
        libc_symbols=footprint.libc_symbols,
        unresolved_sites=footprint.unresolved_sites)


def evolve_corpus(config: Optional[EvolutionConfig] = None,
                  ) -> EvolvedEcosystem:
    """Synthesize ``config.n_releases`` releases of one ecosystem.

    Deterministic in ``config``: rebuilding and indexing release k
    always yields bit-identical footprints, popcon counts, and
    dependency edges — the eager-rebuild oracle the
    :mod:`repro.series` delta codec is tested against.
    """
    config = config or EvolutionConfig()
    corpus = build_paper_corpus(config.base)
    space = corpus.dataset.space
    drift_pool = sorted(profiles.MID_IMPORTANCE_SYSCALLS
                        | profiles.LOW_IMPORTANCE_SYSCALLS)

    # --- mutable evolution state (release k-1 -> release k) -------------
    footprints: Dict[str, Footprint] = dict(corpus.dataset)
    bits: Dict[str, BitsetFootprint] = dict(
        zip(corpus.dataset.packages, corpus.dataset.bitsets))
    libraries = frozenset(
        package.name for package in corpus.repository
        if package.category == "library")
    repo_state: Dict[str, Tuple[str, Tuple[str, ...],
                                Tuple[str, ...]]] = {
        package.name: (package.category, tuple(package.depends),
                       tuple(package.provides))
        for package in corpus.repository}
    # When the base corpus carries dependency semantics, churn keeps
    # emitting the same patterns: re-rolled Depends: lines sometimes
    # become "a | b" alternatives or target a virtual name.
    semantics = config.base.dependency_semantics
    virtuals = (sorted(corpus.repository.virtual_names())
                if semantics else [])

    def _roll_depends(rng: random.Random,
                      lib_names: List[str]) -> Tuple[str, ...]:
        depends = rng.sample(
            lib_names, min(rng.randint(1, 8), len(lib_names)))
        if semantics:
            if len(lib_names) > 1 and rng.random() < 0.2:
                first = depends[0]
                alternative = rng.choice(
                    [lib for lib in lib_names if lib != first])
                depends[0] = f"{first} | {alternative}"
            if virtuals and rng.random() < 0.1:
                depends.append(rng.choice(virtuals))
        return tuple(depends)
    total = corpus.popcon.total_installations
    counts: Dict[str, int] = {
        name: corpus.popcon.installations(name)
        for name in corpus.popcon.packages()}

    # Interning memo: drifted footprints repeat across releases far
    # less than archetypes do, but added packages clone existing ones.
    intern_memo: Dict[Footprint, BitsetFootprint] = {}

    def interned(footprint: Footprint) -> BitsetFootprint:
        cached = intern_memo.get(footprint)
        if cached is None:
            cached = space.intern(footprint)
            intern_memo[footprint] = cached
        return cached

    releases = [EcosystemRelease(
        index=0, dataset=corpus.dataset, popcon=corpus.popcon,
        repository=corpus.repository)]

    for release in range(1, config.n_releases):
        rng = _release_rng(config.seed, release)
        apps = [name for name in footprints if name not in libraries]

        # --- retire ------------------------------------------------------
        n_drop = min(len(apps) - 1,
                     round(len(apps) * config.drop_fraction))
        dropped = sorted(rng.sample(apps, n_drop)) if n_drop > 0 else []
        for name in dropped:
            del footprints[name]
            del bits[name]
            repo_state.pop(name, None)
            counts.pop(name, None)

        # --- drift survivors ---------------------------------------------
        survivors = [name for name in footprints
                     if name not in libraries
                     and footprints[name] is not Footprint.EMPTY]
        n_drift = round(len(survivors) * config.drift_fraction)
        drifted = (sorted(rng.sample(survivors, n_drift))
                   if n_drift > 0 else [])
        for name in drifted:
            moved = _drift_footprint(footprints[name], drift_pool, rng)
            footprints[name] = moved
            bits[name] = interned(moved)

        # --- add ----------------------------------------------------------
        lib_names = sorted(libraries)
        n_add = max(1, round(len(apps) * config.add_fraction)) \
            if config.add_fraction > 0 else 0
        added = []
        donors = [name for name in footprints
                  if footprints[name] is not Footprint.EMPTY]
        for i in range(n_add):
            name = f"ppkg-r{release}-{i:05d}"
            roll = rng.random()
            if roll < 0.08 or not donors:
                footprint = Footprint.EMPTY
            else:
                footprint = footprints[rng.choice(donors)]
                if roll < 0.16:
                    footprint = _drift_footprint(footprint, drift_pool,
                                                 rng)
            footprints[name] = footprint
            bits[name] = interned(footprint)
            repo_state[name] = ("app", _roll_depends(rng, lib_names),
                                ())
            # A fresh package lands in the Zipf tail of the survey.
            counts[name] = max(1, int(
                total * 0.995 / rng.randint(100, max(200,
                                                     len(footprints)))))
            added.append(name)

        # --- dependency churn --------------------------------------------
        churnable = [name for name in footprints
                     if name not in libraries and name not in added]
        n_churn = round(len(churnable) * config.dep_churn)
        for name in (rng.sample(churnable, n_churn)
                     if n_churn > 0 else []):
            category, _, provides = repo_state[name]
            repo_state[name] = (category,
                                _roll_depends(rng, lib_names),
                                provides)

        # --- popcon continuity -------------------------------------------
        for name in list(counts):
            if name in added:
                continue
            if rng.random() < config.popcon_churn:
                factor = math.exp(rng.gauss(0.0, config.popcon_sigma))
                counts[name] = max(1, min(total,
                                          int(counts[name] * factor)))

        popcon = PopularityContest(total, counts)
        repository = Repository(
            [Package(name=name, category=category,
                     depends=list(depends), provides=list(provides))
             for name, (category, depends, provides)
             in repo_state.items()])
        dataset = Dataset(dict(footprints), popcon=popcon,
                          repository=repository, space=space,
                          bitsets=[bits[name] for name in footprints])
        releases.append(EcosystemRelease(
            index=release, dataset=dataset, popcon=popcon,
            repository=repository, added=tuple(added),
            dropped=tuple(dropped), drifted=tuple(drifted)))

    return EvolvedEcosystem(config=config, base_corpus=corpus,
                            releases=releases)
