"""Synthetic Ubuntu-like ecosystem generation.

Builds a complete package repository — runtime libraries, interpreter
packages, essential base packages, the anchor packages the paper names
(Tables 1 and 2, qemu, nfs-utils, …), category-templated filler
packages, interpreted scripts — together with a popularity-contest
survey, all deterministically from a seed.

The builder writes *real ELF binaries* for every artifact.  Nothing in
the metrics path reads the generation plan: the analysis pipeline must
recover footprints from the bytes.  The plan is kept as ground truth
for validation tests only.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..libc import runtime as RT
from ..libc import symbols as LS
from ..packages.package import (
    BinaryArtifact,
    BinaryKind,
    GroundTruthFootprint,
    Package,
)
from ..packages.popcon import PAPER_TOTAL_INSTALLATIONS, PopularityContest
from ..packages.repository import Repository
from ..syscalls import fcntl_ops, ioctl, prctl_ops
from ..syscalls import pseudofiles as PF
from ..syscalls.table import BY_NAME as SYSCALL_BY_NAME
from ..syscalls.table import LIVE_NAMES
from . import profiles as P
from .codegen import BinarySpec, FunctionSpec, generate_binary, stable_seed
from .runtime_gen import generate_runtime_images


@dataclass
class EcosystemConfig:
    """Knobs for ecosystem size and determinism."""

    n_filler_packages: int = 360
    n_driver_packages: int = 40
    n_script_packages: int = 400
    seed: int = 2016
    total_installations: int = PAPER_TOTAL_INSTALLATIONS
    # Fraction of legacy-API users migrated to preferred variants;
    # 0.0 reproduces the paper's snapshot, higher values simulate
    # later releases (see profiles.shifted_variant_probs).
    adoption_shift: float = 0.0
    # Emit Debian-style dependency semantics: interpreter packages
    # gain Provides: virtuals, script packages depend on
    # "virtual | concrete" alternatives, and a task metapackage
    # bundles interpreters through alternative groups.  Off by
    # default — the flat ecosystem is unchanged.
    dependency_semantics: bool = False


@dataclass
class Ecosystem:
    """A generated repository plus its survey and ground truth."""

    repository: Repository
    popcon: PopularityContest
    ground_truth: Dict[str, GroundTruthFootprint]
    interpreters: Dict[str, str]
    config: EcosystemConfig


# Essential base packages present on every installation.
ESSENTIAL_PACKAGES = (
    "coreutils", "util-linux", "findutils", "grep", "sed", "tar",
    "gzip", "bzip2", "procps", "mount-tools", "login-tools",
    "passwd-tools", "net-base", "init-core", "cron-core", "dpkg-core",
    "apt-core", "diffutils", "hostname-tool", "sysvinit-utils",
    "e2fsprogs", "kmod-core", "udev-core", "base-files-bin",
    "debconf-bin", "libc-bin",
)

# Anchor packages with pinned installation rates and pinned APIs.
#   name -> (install probability, direct syscalls, library syscalls,
#            ioctl ops, pseudo files)
_ANCHORS: Dict[str, dict] = {
    "libnuma": dict(prob=0.360, lib_syscalls=("mbind", "set_mempolicy",
                                              "get_mempolicy"),
                    lib_soname="libnuma.so.1"),
    "libopenblas": dict(prob=0.030, lib_syscalls=("mbind",),
                        lib_soname="libopenblas.so.0",
                        imports=("sched_getaffinity", "sched_setaffinity")),
    "libkeyutils": dict(prob=0.272, lib_syscalls=("add_key", "keyctl"),
                        lib_soname="libkeyutils.so.1"),
    "pam-keyutil": dict(prob=0.080, lib_syscalls=("keyctl",),
                        lib_soname="pam_keyinit.so"),
    "keyutils-tools": dict(prob=0.144,
                           lib_syscalls=("request_key",),
                           lib_soname="libkeyutils-legacy.so.1"),
    # Carries the vectored-I/O wrappers at the paper's 11.7% importance
    # (Table 1 attributes the raw preadv/pwritev sites to libc alone).
    "vectored-io-tools": dict(prob=0.117, imports=("preadv", "pwritev")),
    "coop-computing-tools": dict(
        prob=0.010, syscalls=("seccomp", "sched_setattr",
                              "sched_getattr", "renameat2")),
    "kexec-tools": dict(prob=0.010, syscalls=("kexec_load",
                                              "kexec_file_load")),
    "systemd": dict(prob=0.040,
                    syscalls=("clock_adjtime", "renameat2", "unshare",
                              "setns", "signalfd", "name_to_handle_at"),
                    imports=("epoll_wait", "epoll_ctl", "signalfd",
                             "timerfd_create", "timerfd_settime",
                             "prctl", "mount", "umount2", "reboot"),
                    prctls=("PR_SET_NAME", "PR_SET_CHILD_SUBREAPER",
                            "PR_SET_SECUREBITS"),
                    pseudo=("/proc/self/mountinfo", "/dev/console",
                            "/sys/power/state", "/proc/swaps")),
    "qemu-user": dict(prob=0.010, syscalls=("mq_timedsend",
                                            "mq_getsetattr")),
    "qemu-system": dict(prob=0.012,
                        imports=("ioctl", "eventfd", "mmap64"),
                        ioctls=("KVM_CREATE_VM", "KVM_CHECK_EXTENSION",
                                "KVM_CREATE_VCPU", "KVM_RUN"),
                        pseudo=("/dev/kvm",)),
    "ioping": dict(prob=0.008, syscalls=("io_setup", "io_submit",
                                         "io_getevents", "io_destroy")),
    "zfs-fuse": dict(prob=0.006, syscalls=("io_getevents", "io_cancel"),
                     pseudo=("/dev/fuse",)),
    "valgrind": dict(prob=0.040, syscalls=("getcpu", "process_vm_readv",
                                           "process_vm_writev")),
    "rt-tests": dict(prob=0.015, syscalls=("getcpu", "sched_setattr")),
    "nfs-utils": dict(prob=0.070, syscalls=("nfsservctl", "mount")),
    "legacy-compat-tools": dict(
        prob=0.020, syscalls=("uselib", "afs_syscall", "vserver",
                              "security", "_sysctl")),
    "mqueue-tools": dict(prob=0.015, syscalls=("mq_open", "mq_unlink",
                                               "mq_timedreceive")),
    "perf-tools": dict(prob=0.060, syscalls=("perf_event_open",
                                             "bpf", "kcmp"),
                       pseudo=("/proc/kallsyms", "/sys/kernel/debug")),
    "criu-tools": dict(prob=0.005, syscalls=("kcmp", "execveat",
                                             "open_by_handle_at",
                                             "modify_ldt")),
    "fatrace": dict(prob=0.004, syscalls=("fanotify_init",
                                          "fanotify_mark")),
    "numactl": dict(prob=0.030, syscalls=("migrate_pages",
                                          "set_mempolicy")),
    "secure-utils": dict(prob=0.030, syscalls=("faccessat", "fchmodat",
                                               "fchownat", "renameat",
                                               "readlinkat", "mkdirat",
                                               "mknodat", "symlinkat",
                                               "linkat", "futimesat")),
    "event-utils": dict(prob=0.020, syscalls=("epoll_pwait", "pselect6",
                                              "eventfd", "dup3",
                                              "sync_file_range")),
    "legacy-fs-tools": dict(prob=0.015, syscalls=("creat", "fork",
                                                  "getdents64", "tkill",
                                                  "utime"),
                            pseudo=("/dev/hda",)),
    "grub-install-bin": dict(prob=0.300, imports=("write", "read"),
                             pseudo=("/dev/null", "/dev/zero", "/dev/sda")),
    "exportfs": dict(prob=0.070, syscalls=("nfsservctl",)),
}

# Syscall -> libc wrapper name when they differ (the wrapper route is
# preferred so raw sites stay library-only, per Table 1).
_WRAPPER_ALIASES: Dict[str, str] = {
    "signalfd4": "signalfd",
    "newfstatat": "fstatat",
    "pread64": "pread64",
    "eventfd2": "eventfd",
    "umount2": "umount",
    "_sysctl": "sysctl",
}

_INTERPRETER_SPECS: Dict[str, dict] = {
    # package -> (probability, interpreter keys it provides)
    "dash": dict(prob=0.999, provides=("dash",)),
    "bash": dict(prob=0.998, provides=("bash",)),
    "python2.7": dict(prob=0.97, provides=("python",)),
    "perl": dict(prob=0.98, provides=("perl",)),
    "ruby2.1": dict(prob=0.18, provides=("ruby",)),
    "busybox": dict(prob=0.25, provides=("other",)),
}


class EcosystemBuilder:
    """Deterministically builds an :class:`Ecosystem`."""

    def __init__(self, config: Optional[EcosystemConfig] = None) -> None:
        self.config = config or EcosystemConfig()
        self._rng = random.Random(self.config.seed)
        self._libc_closure = LS.syscall_footprint_closure()
        self._provider_of: Dict[str, str] = {}
        for library in RT.RUNTIME_LIBRARIES:
            for export in library.exports:
                self._provider_of.setdefault(export, library.soname)
        for symbol in LS.LIBC_SYMBOLS:
            self._provider_of.setdefault(symbol.name, "libc.so.6")
        self._band_plan = P.libc_band_plan()
        self._variant_probs = P.shifted_variant_probs(
            self.config.adoption_shift)
        self._ground_truth: Dict[str, GroundTruthFootprint] = {}

    # --- public API ----------------------------------------------------

    def build(self) -> Ecosystem:
        repository = Repository()
        pinned: Dict[str, float] = {}
        essential: List[str] = ["libc6"]

        repository.add(self._runtime_package())

        for name, spec in _INTERPRETER_SPECS.items():
            repository.add(self._interpreter_package(name, spec))
            pinned[name] = spec["prob"]

        plan = self._filler_plan()
        essential_specs = self._essential_packages()
        for package in essential_specs:
            repository.add(package)
            essential.append(package.name)

        for name, spec in _ANCHORS.items():
            repository.add(self._anchor_package(name, spec))
            pinned[name] = spec["prob"]

        for entry in plan:
            repository.add(self._filler_package(entry))
            pinned[entry["name"]] = entry["prob"]

        for index, package in enumerate(self._driver_packages()):
            repository.add(package)
            # Half the driver utilities clear the 1%-importance bar
            # (Figure 4's 188-code band); the rest stay below it.
            if index % 2 == 0:
                pinned[package.name] = self._rng.uniform(0.012, 0.06)
            else:
                pinned[package.name] = self._rng.uniform(0.0008, 0.006)

        script_packages = self._script_packages(repository)
        for package, prob in script_packages:
            repository.add(package)
            pinned[package.name] = prob

        if self.config.dependency_semantics:
            # A task metapackage (no binaries of its own) whose
            # Depends: lines are alternative groups over the
            # interpreter stack — the pattern an AND-only resolver
            # collapses to its first branch.
            repository.add(Package(
                "interpreters-meta", category="metapackage",
                depends=["python2.7 | perl | ruby2.1",
                         "dash | bash | busybox"],
                description="task metapackage (alternative groups)"))
            pinned["interpreters-meta"] = 0.02

        popcon = PopularityContest.synthesize(
            repository.names(),
            total_installations=self.config.total_installations,
            essential=essential,
            pinned=pinned,
            seed=self.config.seed,
        )
        return Ecosystem(
            repository=repository,
            popcon=popcon,
            ground_truth=dict(self._ground_truth),
            interpreters=dict(P.INTERPRETER_PACKAGES),
            config=self.config,
        )

    # --- runtime and interpreters ------------------------------------------

    def _runtime_package(self) -> Package:
        package = Package("libc6", category="runtime",
                          description="GNU C library and loader")
        for soname, image in generate_runtime_images().items():
            package.add(BinaryArtifact(
                name=f"lib/{soname}", kind=BinaryKind.SHARED_LIBRARY,
                data=image))
        return package

    def _interpreter_package(self, name: str, spec: dict) -> Package:
        rng = random.Random(stable_seed(str(self.config.seed), name))
        provides: List[str] = []
        if self.config.dependency_semantics:
            # Each interpreter provides a virtual runtime name so
            # script packages can depend on the capability rather
            # than the concrete package (Debian's
            # mail-transport-agent idiom).
            provides = [f"{key}-runtime" for key in spec["provides"]]
        package = Package(name, category="interpreter",
                          depends=["libc6"], provides=provides,
                          description=f"{name} language runtime")
        imports = list(P.BASE_LIBC_IMPORTS)
        imports += [
            "dlopen", "dlsym", "dlclose", "setlocale", "mbstowcs",
            "wcstombs", "select", "poll", "pipe", "dup", "waitpid",
            "execve", "fork", "sigaction", "sigprocmask", "getrlimit",
            "opendir", "readdir", "closedir", "realpath", "mkstemp",
            "socket", "connect", "getaddrinfo", "pthread_create",
            "pthread_mutex_lock", "pthread_mutex_unlock",
            "pthread_cond_wait",
        ]
        # Interpreters expose nearly the whole POSIX surface to their
        # scripts; draw the variant-usage symbols so script packages
        # inherit realistic wrapper usage (Tables 8-11).
        for symbol, probability in self._variant_probs.items():
            boosted = min(1.0, probability * 1.3)
            if rng.random() < boosted and self._symbol_allowed(
                    symbol, 0.99):
                imports.append(symbol)
        direct = ["futex", "getrandom", "clock_gettime", "sigaltstack"]
        # Names without a wrapper (e.g. tgkill) become raw call sites.
        libc_imports, direct = self._split_by_provider(imports, direct)
        artifact = self._make_executable(
            package_name=name,
            file_name=f"bin/{name.rstrip('0123456789.')}",
            rng=rng,
            libc_imports=libc_imports,
            direct_syscalls=tuple(direct),
            pseudo_files=("/dev/urandom", "/proc/self/maps"),
        )
        package.add(artifact)
        return package

    # --- essential packages ----------------------------------------------

    def _essential_packages(self) -> List[Package]:
        """The always-installed base system.

        Collectively responsible for making every *indispensable* API
        appear on every installation: leftover indispensable syscalls,
        the ubiquitous vectored opcodes, essential pseudo-files, and
        every top-band (t100) libc symbol are distributed round-robin
        across these packages.
        """
        base_syscall_cover = self._runtime_covered_syscalls()
        leftover_syscalls = sorted(
            P.INDISPENSABLE_SYSCALLS - base_syscall_cover)
        t100_symbols = sorted(
            name for name, band in self._band_plan.items()
            if band == "t100")
        ubiquitous_ioctls = list(ioctl.UBIQUITOUS_NAMES)
        ubiquitous_fcntls = list(fcntl_ops.UBIQUITOUS_NAMES)
        ubiquitous_prctls = list(prctl_ops.UBIQUITOUS_NAMES)
        common_prctls = [name for name in prctl_ops.COMMON_NAMES
                         if name not in prctl_ops.UBIQUITOUS_NAMES]
        essential_pseudo = [d.path for d in PF.PSEUDO_FILES
                            if d.tier == "essential"]
        common_pseudo = [d.path for d in PF.PSEUDO_FILES
                         if d.tier == "common"]

        packages = []
        names = list(ESSENTIAL_PACKAGES)
        count = len(names)
        for index, name in enumerate(names):
            rng = random.Random(stable_seed(str(self.config.seed), name))
            syscalls = leftover_syscalls[index::count]
            symbols = t100_symbols[index::count]
            ops_i = ubiquitous_ioctls[index::count]
            ops_f = ubiquitous_fcntls[index::count]
            ops_p = ubiquitous_prctls[index::count]
            pseudo = (essential_pseudo[index::count]
                      + common_pseudo[index::count])
            package = Package(name, category="essential",
                              depends=["libc6"],
                              description=f"essential base ({name})")
            if index % 4 == 0:
                stdio_internals = ["_IO_getc", "_IO_putc"]
            elif index % 4 == 1:
                stdio_internals = ["__uflow"]
            else:
                stdio_internals = []
            # Leftover indispensable syscalls reach binaries through
            # their libc wrappers when one exists (Table 1: no
            # application issues clock_settime or iopl raw), falling
            # back to raw call sites otherwise.
            wrapped = [_WRAPPER_ALIASES.get(n, n) for n in syscalls]
            libc_imports, direct = self._split_by_provider(
                symbols + list(P.BASE_LIBC_IMPORTS)
                + list(P.COMMON_LIBC_IMPORTS) + stdio_internals
                + wrapped, [])
            artifact = self._make_executable(
                package_name=name,
                file_name=f"bin/{name}",
                rng=rng,
                libc_imports=libc_imports,
                direct_syscalls=tuple(direct),
                ioctl_ops=tuple(ops_i),
                fcntl_ops=tuple(ops_f),
                prctl_ops=tuple(ops_p),
                pseudo_files=tuple(pseudo),
            )
            package.add(artifact)
            packages.append(package)
        return packages

    def _runtime_covered_syscalls(self) -> Set[str]:
        """Indispensable syscalls every program reaches via the base
        imports (crt startup plus the universally-linked symbols)."""
        covered: Set[str] = set(RT.LIBC_STARTUP_FOOTPRINT)
        for name in P.BASE_LIBC_IMPORTS:
            covered |= self._libc_closure.get(name, frozenset())
        return covered

    # --- anchors ------------------------------------------------------------

    def _anchor_package(self, name: str, spec: dict) -> Package:
        rng = random.Random(stable_seed(str(self.config.seed), name))
        package = Package(name, category="anchor", depends=["libc6"],
                          description=f"anchor package ({name})")
        lib_syscalls = spec.get("lib_syscalls", ())
        lib_exports: Tuple[str, ...] = ()
        lib_soname = None
        if lib_syscalls:
            lib_soname = spec.get("lib_soname", f"lib{name}.so.1")
            lib_exports = tuple(f"{name.replace('-', '_')}_op{i}"
                                for i in range(len(lib_syscalls) + 2))
            package.add(self._make_library(
                package_name=name,
                file_name=f"lib/{lib_soname}",
                soname=lib_soname,
                direct_syscalls=tuple(lib_syscalls),
                exports=lib_exports,
            ))
        direct = tuple(spec.get("syscalls", ()))
        imports = list(P.BASE_LIBC_IMPORTS) + list(spec.get("imports", ()))
        libc_imports, extra_direct = self._split_by_provider(imports, [])
        artifact = self._make_executable(
            package_name=name,
            file_name=f"bin/{name}",
            rng=rng,
            libc_imports=libc_imports,
            direct_syscalls=direct + tuple(extra_direct),
            ioctl_ops=tuple(spec.get("ioctls", ())),
            prctl_ops=tuple(spec.get("prctls", ())),
            pseudo_files=tuple(spec.get("pseudo", ())),
            # The anchor's tool links the anchor's own library, so the
            # library-wrapped syscalls (Table 1) surface in an
            # executable footprint at the package's install rate.
            extra_imports=lib_exports,
            extra_needed=(lib_soname,) if lib_soname else (),
        )
        package.add(artifact)
        if name == "qemu-user":
            package.add(self._qemu_emulator(rng))
        return package

    def _qemu_emulator(self, rng: random.Random) -> BinaryArtifact:
        """qemu's MIPS user-mode emulator: the widest footprint in the
        archive (§3.2: 270 system calls)."""
        skip = set(P.UNUSED_SYSCALLS) | {
            "uselib", "nfsservctl", "afs_syscall", "vserver", "security",
            "kexec_load", "kexec_file_load", "bpf", "seccomp",
            "perf_event_open", "fanotify_init", "fanotify_mark",
            "open_by_handle_at", "name_to_handle_at", "kcmp",
            "process_vm_readv", "process_vm_writev", "migrate_pages",
            "clock_adjtime", "acct", "reboot", "swapon", "swapoff",
            "iopl", "ioperm", "modify_ldt", "pivot_root", "vhangup",
            "execveat", "renameat2", "sched_setattr", "sched_getattr",
            "io_cancel", "io_destroy", "mq_notify",
        }
        emulated = tuple(sorted(LIVE_NAMES - skip))
        # qemu-user dispatches emulated syscalls through libc's
        # syscall(3) with literal SYS_* numbers, so the numbers are
        # immediates at wrapper call sites rather than raw syscall
        # instructions (keeps Table 1's library-only attribution
        # faithful).
        return self._make_executable(
            package_name="qemu-user",
            file_name="bin/qemu-mips",
            rng=rng,
            libc_imports=list(P.BASE_LIBC_IMPORTS),
            wrapper_syscalls=emulated,
            pseudo_files=("/proc/self/maps", "/proc/cpuinfo"),
        )

    # --- fillers ------------------------------------------------------------

    def _filler_plan(self) -> List[dict]:
        """Choose name, template, and popularity for filler packages."""
        weights = P.template_weights()
        plan = []
        for index in range(self.config.n_filler_packages):
            roll = self._rng.random()
            cumulative = 0.0
            template = weights[-1][0]
            for candidate, weight in weights:
                cumulative += weight
                if roll < cumulative:
                    template = candidate
                    break
            name = f"{template.name}-{index:04d}"
            # Popularity: Zipf-like head with noise, capped below 0.9
            # so the always-installed stratum stays curated, plus a
            # genuine log-uniform low tail (popcon's obscure packages).
            rank = index + 1
            if index < int(self.config.n_filler_packages * 0.55):
                prob = min(0.88, 0.9 / (rank ** 0.8) +
                           self._rng.uniform(0.0, 0.02))
            else:
                prob = 10.0 ** self._rng.uniform(-3.5, -1.7)
            prob = max(prob, 3.0 / self.config.total_installations)
            plan.append(dict(name=name, template=template, prob=prob))
        # Attach banded libc symbols to popularity-compatible packages.
        self._assign_libc_bands(plan)
        self._assign_syscall_bands(plan)
        return plan

    def _assign_libc_bands(self, plan: List[dict]) -> None:
        strata = {
            "t50": [e for e in plan if 0.25 <= e["prob"] <= 0.88],
            "t10": [e for e in plan if 0.015 <= e["prob"] < 0.25],
            "t1": [e for e in plan if e["prob"] < 0.006],
        }
        attach_counts = {"t50": (2, 4), "t10": (1, 3), "t1": (1, 2)}
        # Symbols whose importance an anchor package pins exactly
        # (Table 1's preadv/pwritev at ~11.7%) are left to the anchor.
        pinned = {"preadv", "pwritev"}
        for name, band in sorted(self._band_plan.items()):
            if name in pinned:
                continue
            if band not in strata or not strata[band]:
                continue
            rng = random.Random(stable_seed("libc-band", name,
                                            str(self.config.seed)))
            low, high = attach_counts[band]
            pool = strata[band]
            for entry in rng.sample(pool, min(rng.randint(low, high),
                                              len(pool))):
                entry.setdefault("extra_symbols", []).append(name)

    def _assign_syscall_bands(self, plan: List[dict]) -> None:
        """Give mid/low-band syscalls additional filler users so the
        Figure 2 middle and tail are populated (anchors already pin the
        Table 1/2 cases)."""
        mid_pool = [e for e in plan if 0.05 <= e["prob"] <= 0.5]
        low_pool = [e for e in plan if e["prob"] < 0.01]
        library_only = set(RT.LIBRARY_ONLY_SYSCALLS)
        # Calls Table 2 pins to one or two named packages keep exactly
        # their anchor users.
        library_only |= {
            "seccomp", "sched_setattr", "sched_getattr", "kexec_load",
            "kexec_file_load", "clock_adjtime", "renameat2",
            "mq_timedsend", "mq_getsetattr", "io_getevents", "getcpu",
        }
        # Common (but not universal) prctl codes go to mid-popularity
        # packages so Figure 5's 20%-99% middle band is populated.
        common_prctls = [name for name in prctl_ops.COMMON_NAMES
                         if name not in prctl_ops.UBIQUITOUS_NAMES]
        for name in common_prctls:
            rng = random.Random(stable_seed("prctl-mid", name,
                                            str(self.config.seed)))
            pool = [e for e in plan if 0.2 <= e["prob"] <= 0.7]
            if pool:
                for entry in rng.sample(pool, min(rng.randint(2, 3),
                                                  len(pool))):
                    entry.setdefault("extra_prctls", []).append(name)
        for name in sorted(P.MID_IMPORTANCE_SYSCALLS - library_only):
            rng = random.Random(stable_seed("sys-mid", name,
                                            str(self.config.seed)))
            if mid_pool:
                for entry in rng.sample(mid_pool,
                                        min(rng.randint(1, 2),
                                            len(mid_pool))):
                    entry.setdefault("extra_syscalls", []).append(name)
        for name in sorted(P.LOW_IMPORTANCE_SYSCALLS - library_only):
            rng = random.Random(stable_seed("sys-low", name,
                                            str(self.config.seed)))
            if low_pool:
                for entry in rng.sample(low_pool,
                                        min(rng.randint(1, 2),
                                            len(low_pool))):
                    entry.setdefault("extra_syscalls", []).append(name)

    def _filler_package(self, entry: dict) -> Package:
        name = entry["name"]
        template: P.CategoryTemplate = entry["template"]
        prob = entry["prob"]
        rng = random.Random(stable_seed(str(self.config.seed), name))
        package = Package(name, category=template.name,
                          depends=["libc6"],
                          description=f"{template.name} application")

        n_exes = rng.randint(*template.executables)
        # Pool draws, filtered by popularity-band compatibility.
        draws = rng.randint(*template.pool_draws)
        pool = [s for s in template.libc_pool
                if self._symbol_allowed(s, prob)]
        chosen = rng.sample(pool, min(draws, len(pool)))
        if template.use_common:
            chosen += [s for s in P.COMMON_LIBC_IMPORTS
                       if rng.random() < P.COMMON_IMPORT_PROB]
        # Variant usage (Tables 8-11) with the paper's probabilities.
        if template.use_variants:
            for symbol, probability in self._variant_probs.items():
                if rng.random() < probability and self._symbol_allowed(
                        symbol, prob):
                    chosen.append(symbol)
        chosen += entry.get("extra_symbols", [])

        # Direct syscalls for the minority of binaries that issue them.
        direct: List[str] = list(entry.get("extra_syscalls", []))
        if rng.random() < template.direct_syscall_prob:
            candidates = [s for s in template.syscall_pool
                          if self._syscall_allowed(s, prob)]
            if candidates:
                direct += rng.sample(
                    candidates, min(rng.randint(1, 3), len(candidates)))

        ioctls = tuple(
            op for op in template.ioctl_pool
            if rng.random() < (0.5 if op in ioctl.UBIQUITOUS_NAMES
                               else 0.25 if prob < 0.5 else 0.0))
        prctls = tuple(
            [op for op in template.prctl_pool if rng.random() < 0.4]
            + entry.get("extra_prctls", []))
        pseudo = tuple(path for path in template.pseudo_pool
                       if rng.random() < template.pseudo_prob)

        libc_imports, extra_direct = self._split_by_provider(
            list(P.BASE_LIBC_IMPORTS) + chosen, direct)
        per_exe = self._partition(libc_imports, n_exes, rng)
        for index in range(n_exes):
            imports = sorted(set(per_exe[index])
                             | set(P.BASE_LIBC_IMPORTS))
            artifact = self._make_executable(
                package_name=name,
                file_name=f"bin/{name}-{index}" if n_exes > 1
                          else f"bin/{name}",
                rng=rng,
                libc_imports=imports,
                direct_syscalls=tuple(extra_direct) if index == 0 else (),
                ioctl_ops=ioctls if index == 0 else (),
                prctl_ops=prctls if index == 0 else (),
                pseudo_files=pseudo if index == 0 else (),
            )
            package.add(artifact)
        # Shared libraries make up about half of all ELF binaries in
        # the archive (Figure 1): most packages ship support libraries.
        n_libs = rng.choices((0, 1, 2, 3, 4, 5),
                             weights=(12, 20, 25, 20, 13, 10))[0]
        for lib_index in range(n_libs):
            soname = f"lib{name}-{lib_index}.so.0"
            package.add(self._make_library(
                package_name=name,
                file_name=f"lib/{soname}",
                soname=soname,
                direct_syscalls=(),
                exports=tuple(
                    f"{name.replace('-', '_')}_l{lib_index}_api{i}"
                    for i in range(rng.randint(2, 6))),
                libc_imports=tuple(rng.sample(
                    list(P.BASE_LIBC_IMPORTS), 5)),
            ))
        # A sliver of the archive is statically linked (0.38%).
        if rng.random() < 0.012:
            package.add(self._make_static_executable(name, rng))
        return package

    def _make_static_executable(self, package_name: str,
                                rng: random.Random) -> BinaryArtifact:
        """A statically linked tool: raw syscalls, no dynamic section."""
        syscalls = ("read", "write", "open", "close", "fstat", "mmap",
                    "munmap", "brk", "exit_group", "rt_sigaction",
                    "rt_sigprocmask", "arch_prctl", "set_tid_address")
        main = FunctionSpec(name="main", direct_syscalls=syscalls)
        spec = BinarySpec(
            name=f"bin/{package_name}-static",
            functions=[main],
            needed=(),
            entry_function="main",
            interp=None,
        )
        data = generate_binary(spec)
        self._record_ground_truth(package_name, (), syscalls, (), (),
                                  (), ())
        return BinaryArtifact(name=f"bin/{package_name}-static",
                              kind=BinaryKind.ELF_STATIC, data=data)

    def _symbol_allowed(self, symbol: str, prob: float) -> bool:
        band = self._band_plan.get(symbol)
        if band in (None, "t100"):
            return True
        if band == "t50":
            return prob <= 0.9
        if band == "t10":
            return prob <= 0.3
        if band == "t1":
            return prob <= 0.008
        return False  # t0: never used

    def _syscall_allowed(self, name: str, prob: float) -> bool:
        band = P.band_of_syscall(name)
        if band == "indispensable":
            return True
        if band == "mid":
            return prob <= 0.6
        if band == "low":
            return prob <= 0.05
        return False

    # --- driver-utility packages (ioctl tail, Figure 4) --------------------

    def _driver_packages(self) -> List[Package]:
        used = ioctl.used_names(280)
        head = set(ioctl.UBIQUITOUS_NAMES)
        tail = [op for op in used if op not in head]
        packages = []
        count = max(1, self.config.n_driver_packages)
        for index in range(count):
            name = f"driver-util-{index:03d}"
            rng = random.Random(stable_seed(str(self.config.seed), name))
            ops = tail[index::count]
            if not ops:
                continue
            package = Package(name, category="driver-util",
                              depends=["libc6"],
                              description="device-specific utility")
            artifact = self._make_executable(
                package_name=name,
                file_name=f"bin/{name}",
                rng=rng,
                libc_imports=list(P.BASE_LIBC_IMPORTS),
                ioctl_ops=tuple(ops),
                pseudo_files=tuple(rng.sample(
                    [d.path for d in PF.PSEUDO_FILES
                     if d.tier in ("specific", "admin")], 2)),
            )
            package.add(artifact)
            packages.append(package)
        return packages

    # --- scripts (Figure 1) ---------------------------------------------

    def _script_packages(self, repository: Repository,
                         ) -> List[Tuple[Package, float]]:
        """Packages of interpreted programs, matching Figure 1's mix."""
        mix = [(key, fraction) for key, fraction in
               P.INTERPRETER_MIX.items() if key != "elf"]
        packages: List[Tuple[Package, float]] = []
        total = self.config.n_script_packages
        for index in range(total):
            roll = self._rng.random() * sum(f for _, f in mix)
            cumulative = 0.0
            interp = mix[-1][0]
            for key, fraction in mix:
                cumulative += fraction
                if roll < cumulative:
                    interp = key
                    break
            name = f"script-pkg-{index:04d}"
            rng = random.Random(stable_seed(str(self.config.seed), name))
            provider = P.INTERPRETER_PACKAGES[interp]
            if self.config.dependency_semantics:
                interp_dep = f"{interp}-runtime | {provider}"
            else:
                interp_dep = provider
            package = Package(name, category="scripts",
                              depends=["libc6", interp_dep],
                              description=f"{interp} scripts")
            for script_index in range(rng.randint(1, 4)):
                shebang = {
                    "dash": "#!/bin/sh\n",
                    "bash": "#!/bin/bash\n",
                    "python": "#!/usr/bin/python\n",
                    "perl": "#!/usr/bin/perl\n",
                    "ruby": "#!/usr/bin/ruby\n",
                    "other": "#!/bin/busybox sh\n",
                }[interp]
                body = shebang + f"# generated script {script_index}\n"
                package.add(BinaryArtifact(
                    name=f"bin/{name}-{script_index}",
                    kind=BinaryKind.SCRIPT,
                    data=body.encode(),
                    interpreter=interp,
                ))
            prob = min(0.85, 0.8 / ((index + 1) ** 0.75)
                       + rng.uniform(0, 0.01))
            packages.append((package, prob))
        return packages

    # --- artifact helpers ----------------------------------------------

    def _split_by_provider(self, symbols: Sequence[str],
                           direct: Sequence[str],
                           ) -> Tuple[List[str], List[str]]:
        """Split requested names into importable symbols and raw
        syscalls (for names no runtime library exports)."""
        imports: List[str] = []
        extra_direct: List[str] = list(direct)
        for name in symbols:
            if name in self._provider_of:
                if name not in imports:
                    imports.append(name)
            elif name in SYSCALL_BY_NAME:
                if name not in extra_direct:
                    extra_direct.append(name)
        return imports, extra_direct

    @staticmethod
    def _partition(items: Sequence[str], parts: int,
                   rng: random.Random) -> List[List[str]]:
        shuffled = list(items)
        rng.shuffle(shuffled)
        return [shuffled[i::parts] for i in range(parts)]

    def _needed_for(self, imports: Iterable[str]) -> Tuple[str, ...]:
        needed = ["libc.so.6"]
        for symbol in imports:
            provider = self._provider_of.get(symbol)
            if provider and provider not in needed:
                needed.append(provider)
        return tuple(needed)

    def _make_executable(self, package_name: str, file_name: str,
                         rng: random.Random,
                         libc_imports: Sequence[str] = (),
                         direct_syscalls: Sequence[str] = (),
                         ioctl_ops: Sequence[str] = (),
                         fcntl_ops: Sequence[str] = (),
                         prctl_ops: Sequence[str] = (),
                         pseudo_files: Sequence[str] = (),
                         extra_imports: Sequence[str] = (),
                         extra_needed: Sequence[str] = (),
                         wrapper_syscalls: Sequence[str] = (),
                         ) -> BinaryArtifact:
        imports = [s for s in dict.fromkeys(libc_imports)]
        if "__libc_start_main" not in imports:
            imports.insert(0, "__libc_start_main")
        main = FunctionSpec(
            name="main",
            libc_calls=tuple(s for s in imports
                             if s != "__libc_start_main")
                       + tuple(extra_imports),
            direct_syscalls=tuple(dict.fromkeys(direct_syscalls)),
            syscall_via_wrapper=tuple(dict.fromkeys(wrapper_syscalls)),
            ioctl_ops=tuple(ioctl_ops),
            fcntl_ops=tuple(fcntl_ops),
            prctl_ops=tuple(prctl_ops),
            strings=tuple(pseudo_files),
        )
        needed = list(self._needed_for(imports))
        for soname in extra_needed:
            if soname not in needed:
                needed.append(soname)
        spec = BinarySpec(
            name=file_name,
            functions=[main],
            needed=tuple(needed),
            entry_function="main",
        )
        # crt0 imports __libc_start_main explicitly.
        spec.functions.insert(0, FunctionSpec(
            name="__crt_init", libc_calls=("__libc_start_main",)))
        data = generate_binary(spec)
        self._record_ground_truth(
            package_name, imports,
            tuple(direct_syscalls) + tuple(wrapper_syscalls),
            ioctl_ops, fcntl_ops, prctl_ops, pseudo_files)
        return BinaryArtifact(name=file_name,
                              kind=BinaryKind.ELF_EXECUTABLE, data=data)

    def _make_library(self, package_name: str, file_name: str,
                      soname: str,
                      direct_syscalls: Sequence[str],
                      exports: Sequence[str],
                      libc_imports: Sequence[str] = (),
                      ) -> BinaryArtifact:
        functions = []
        syscall_list = list(direct_syscalls)
        for index, export in enumerate(exports):
            syscalls = tuple(syscall_list[index::len(exports)])
            functions.append(FunctionSpec(
                name=export,
                libc_calls=tuple(libc_imports) if index == 0 else (),
                direct_syscalls=syscalls,
                exported=True,
            ))
        spec = BinarySpec(
            name=file_name,
            functions=functions,
            needed=("libc.so.6",),
            soname=soname,
            entry_function=None,
        )
        data = generate_binary(spec)
        self._record_ground_truth(
            package_name, libc_imports, direct_syscalls, (), (), (), ())
        return BinaryArtifact(name=file_name,
                              kind=BinaryKind.SHARED_LIBRARY, data=data)

    def _record_ground_truth(self, package_name: str,
                             imports: Sequence[str],
                             direct_syscalls: Sequence[str],
                             ioctl_ops: Sequence[str],
                             fcntl_ops_: Sequence[str],
                             prctl_ops_: Sequence[str],
                             pseudo_files: Sequence[str]) -> None:
        syscalls: Set[str] = set(direct_syscalls)
        libc_symbols: Set[str] = set()
        for symbol in imports:
            provider = self._provider_of.get(symbol)
            if provider == "libc.so.6":
                libc_symbols.add(symbol)
                syscalls |= self._libc_closure.get(symbol, frozenset())
            else:
                for library in RT.RUNTIME_LIBRARIES:
                    if library.soname == provider:
                        syscalls |= set(
                            library.export_syscalls.get(symbol, ()))
        truth = GroundTruthFootprint(
            syscalls=tuple(sorted(syscalls)),
            ioctls=tuple(sorted(ioctl_ops)),
            fcntls=tuple(sorted(fcntl_ops_)),
            prctls=tuple(sorted(prctl_ops_)),
            pseudo_files=tuple(sorted(pseudo_files)),
            libc_symbols=tuple(sorted(libc_symbols)),
        )
        existing = self._ground_truth.get(package_name)
        self._ground_truth[package_name] = (
            truth if existing is None else existing.merged(truth))


def build_ecosystem(config: Optional[EcosystemConfig] = None) -> Ecosystem:
    """Build the default synthetic ecosystem."""
    return EcosystemBuilder(config).build()
