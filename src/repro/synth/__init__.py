"""Synthetic ecosystem generation: code generation, runtime libraries,
calibration profiles, and the ecosystem builder."""

from . import profiles
from .codegen import BinaryGenerator, BinarySpec, FunctionSpec, generate_binary, stable_seed
from .corruptor import (
    CORRUPT_PACKAGE,
    DECODE_MUTATIONS,
    MUTATIONS,
    all_corruptions,
    corrupt,
    corrupt_artifacts,
    inject_corrupt_package,
)
from .ecosystem import (
    Ecosystem,
    EcosystemBuilder,
    EcosystemConfig,
    ESSENTIAL_PACKAGES,
    build_ecosystem,
)
from .evolve import (
    EcosystemRelease,
    EvolutionConfig,
    EvolvedEcosystem,
    evolve_corpus,
)
from .paper import (
    PAPER_BINARIES,
    PAPER_PACKAGES,
    PaperCorpus,
    PaperScaleConfig,
    build_paper_corpus,
)
from .runtime_gen import generate_libc, generate_ld_so, generate_runtime_images

__all__ = [
    "BinaryGenerator",
    "BinarySpec",
    "CORRUPT_PACKAGE",
    "DECODE_MUTATIONS",
    "ESSENTIAL_PACKAGES",
    "Ecosystem",
    "EcosystemBuilder",
    "EcosystemConfig",
    "EcosystemRelease",
    "EvolutionConfig",
    "EvolvedEcosystem",
    "FunctionSpec",
    "MUTATIONS",
    "PAPER_BINARIES",
    "PAPER_PACKAGES",
    "PaperCorpus",
    "PaperScaleConfig",
    "build_paper_corpus",
    "all_corruptions",
    "build_ecosystem",
    "corrupt",
    "corrupt_artifacts",
    "evolve_corpus",
    "generate_binary",
    "generate_ld_so",
    "inject_corrupt_package",
    "generate_libc",
    "generate_runtime_images",
    "profiles",
    "stable_seed",
]
