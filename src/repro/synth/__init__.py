"""Synthetic ecosystem generation: code generation, runtime libraries,
calibration profiles, and the ecosystem builder."""

from . import profiles
from .codegen import BinaryGenerator, BinarySpec, FunctionSpec, generate_binary, stable_seed
from .ecosystem import (
    Ecosystem,
    EcosystemBuilder,
    EcosystemConfig,
    ESSENTIAL_PACKAGES,
    build_ecosystem,
)
from .runtime_gen import generate_libc, generate_ld_so, generate_runtime_images

__all__ = [
    "BinaryGenerator",
    "BinarySpec",
    "ESSENTIAL_PACKAGES",
    "Ecosystem",
    "EcosystemBuilder",
    "EcosystemConfig",
    "FunctionSpec",
    "build_ecosystem",
    "generate_binary",
    "generate_ld_so",
    "generate_libc",
    "generate_runtime_images",
    "profiles",
    "stable_seed",
]
