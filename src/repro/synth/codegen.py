"""Machine-code generation for synthetic binaries.

Turns an abstract *binary specification* — which libc symbols to call,
which syscalls to issue directly, which vectored opcodes to pass, which
pseudo-file strings to embed — into genuine x86-64 code plus ELF
metadata, via :class:`repro.x86.encoder.Assembler` and
:class:`repro.elf.writer.ElfWriter`.

The generated code uses the same idioms real compilers emit for these
constructs, so the analysis pipeline exercises its production paths:

* libc calls become PLT calls (``call`` into ``.plt``);
* direct syscalls become ``mov $nr, %eax; syscall``;
* vectored calls load the opcode immediate into the argument register;
* strings are referenced with RIP-relative ``lea`` from ``.rodata``;
* a fraction of call sites pass function pointers via ``lea`` to
  exercise the paper's pointer over-approximation (§7).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..elf import constants as EC
from ..elf.writer import ElfWriter
from ..syscalls import fcntl_ops, ioctl, prctl_ops
from ..syscalls.table import number_of
from ..x86 import registers as R
from ..x86.encoder import Assembler


@dataclass
class FunctionSpec:
    """One function to generate inside a binary."""

    name: str                                   # label / export name
    libc_calls: Tuple[str, ...] = ()            # imported symbols to call
    direct_syscalls: Tuple[str, ...] = ()       # syscall names, by insn
    int80_syscalls: Tuple[str, ...] = ()        # 32-bit style call sites
    ioctl_ops: Tuple[str, ...] = ()             # opcode names (via libc)
    fcntl_ops: Tuple[str, ...] = ()
    prctl_ops: Tuple[str, ...] = ()
    syscall_via_wrapper: Tuple[str, ...] = ()   # syscall(SYS_xxx, ...)
    strings: Tuple[str, ...] = ()               # .rodata strings to reference
    local_calls: Tuple[str, ...] = ()           # other functions to call
    take_pointer_of: Tuple[str, ...] = ()       # lea a local fn (indirect)
    exported: bool = False
    # When set, emit a syscall whose number arrives in a parameter
    # register — an intentionally unresolvable site (§2.4).
    unresolvable_syscall_site: bool = False
    # When set, emit ``call *%reg`` (used by __libc_start_main to
    # dispatch into main, and by plugin-style dispatch loops).
    indirect_call_reg: Optional[int] = None
    # Emit direct_syscalls immediately after the prologue (runtime
    # startup paths execute them before dispatching onward).
    syscalls_first: bool = False


@dataclass
class BinarySpec:
    """A whole binary: functions plus link-level metadata."""

    name: str
    functions: List[FunctionSpec] = field(default_factory=list)
    needed: Tuple[str, ...] = ("libc.so.6",)
    soname: Optional[str] = None                # set for shared libraries
    entry_function: Optional[str] = "main"      # None for libraries
    extra_strings: Tuple[str, ...] = ()         # unreferenced rodata
    interp: Optional[str] = "/lib64/ld-linux-x86-64.so.2"
    # Stamp exports with one GNU symbol version (system libraries).
    version: Optional[str] = None

    @property
    def is_library(self) -> bool:
        return self.soname is not None


_OPCODE_TABLES = {
    "ioctl": ioctl.BY_NAME,
    "fcntl": fcntl_ops.BY_NAME,
    "prctl": prctl_ops.BY_NAME,
}

_VECTOR_SYSCALL_NAMES = {"ioctl": "ioctl", "fcntl": "fcntl",
                         "prctl": "prctl"}


def _opcode_value(kind: str, name: str) -> int:
    table = _OPCODE_TABLES[kind]
    entry = table.get(name)
    if entry is not None:
        return entry.code
    if name.startswith("0x"):
        return int(name, 16)
    raise KeyError(f"unknown {kind} opcode {name!r}")


class BinaryGenerator:
    """Generates one ELF image from a :class:`BinarySpec`."""

    def __init__(self, spec: BinarySpec) -> None:
        self.spec = spec
        file_type = EC.ET_DYN if spec.is_library else EC.ET_EXEC
        self.writer = ElfWriter(
            file_type=file_type,
            soname=spec.soname,
            interp=None if spec.is_library else spec.interp,
            version=spec.version,
        )
        self.asm = Assembler()

    def build(self) -> bytes:
        writer = self.writer
        for library in self.spec.needed:
            writer.add_needed(library)
        # Imports must be declared before code references them.
        for function in self.spec.functions:
            for symbol in function.libc_calls:
                writer.add_import(symbol)
            for kind, ops in (("ioctl", function.ioctl_ops),
                              ("fcntl", function.fcntl_ops),
                              ("prctl", function.prctl_ops)):
                if ops:
                    writer.add_import(_VECTOR_SYSCALL_NAMES[kind])
            if function.syscall_via_wrapper:
                writer.add_import("syscall")

        for text in self.spec.extra_strings:
            writer.add_string(text)

        for function in self.spec.functions:
            self._emit_function(function)

        entry = None
        if self.spec.entry_function is not None:
            entry = self._emit_start(self.spec.entry_function)

        writer.set_text(bytes(self.asm.code), self.asm.labels,
                        self.asm.fixups, entry_label=entry)
        for function in self.spec.functions:
            if function.exported:
                writer.export_function(function.name, function.name)
        return writer.build()

    # --- emission helpers ----------------------------------------------

    # Imports that terminate the process; emitted last so a dynamic
    # run reaches the function's whole body first.
    _TERMINATING_IMPORTS = frozenset({"exit", "_exit", "abort",
                                      "exit_group"})

    # Filler instructions write only these registers, keeping the
    # argument/dataflow registers (rax, rdi, rsi, rdx, r12, r13) and
    # frame registers untouched.
    _FILLER_REGS = (R.RBX, R.R14, R.R15)

    def _emit_filler(self, name: str) -> None:
        """A few deterministic computation instructions, as a real
        compiler would emit between calls — exercising the decoder's
        ALU/test/shift coverage without changing any footprint."""
        seed = stable_seed("filler", name)
        count = seed % 4
        for index in range(count):
            choice = (seed >> (4 * index + 2)) % 5
            dst = self._FILLER_REGS[index % len(self._FILLER_REGS)]
            src = self._FILLER_REGS[(index + 1) % len(self._FILLER_REGS)]
            if choice == 0:
                self.asm.alu_reg_reg("add", dst, src)
            elif choice == 1:
                self.asm.alu_reg_reg("and", dst, src)
            elif choice == 2:
                self.asm.test_reg_reg(dst, src)
            elif choice == 3:
                self.asm.shl_imm8(dst, 1 + (seed % 7))
            else:
                self.asm.inc_reg(dst)

    def _emit_function(self, function: FunctionSpec) -> None:
        asm = self.asm
        asm.align(16)
        asm.label(function.name)
        asm.prologue()
        self._emit_filler(function.name)
        terminating_syscalls = []
        if function.syscalls_first:
            for syscall_name in function.direct_syscalls:
                # exit/exit_group belong at teardown, after dispatch.
                if syscall_name in ("exit", "exit_group"):
                    terminating_syscalls.append(syscall_name)
                else:
                    self._emit_direct_syscall(syscall_name)
        for text in function.strings:
            offset = self.writer.add_string(text)
            asm.lea_rip_rodata(R.RDI, offset)
        for target in function.take_pointer_of:
            asm.lea_rip_local(R.RDX, target)
        terminators = [name for name in function.libc_calls
                       if name in self._TERMINATING_IMPORTS]
        for name in function.libc_calls:
            if name not in self._TERMINATING_IMPORTS:
                asm.call_import(name)
        if function.indirect_call_reg is not None:
            # Before local calls so __libc_start_main matches the real
            # control flow: run main, then call exit().
            asm.call_reg(function.indirect_call_reg)
        for target in function.local_calls:
            asm.call_local(target)
        for kind, ops in (("ioctl", function.ioctl_ops),
                          ("fcntl", function.fcntl_ops),
                          ("prctl", function.prctl_ops)):
            for op_name in ops:
                self._emit_vector_call(kind, op_name)
        if not function.syscalls_first:
            for syscall_name in function.direct_syscalls:
                self._emit_direct_syscall(syscall_name)
        for syscall_name in function.int80_syscalls:
            self._emit_int80_syscall(syscall_name)
        for syscall_name in function.syscall_via_wrapper:
            self._emit_wrapper_syscall(syscall_name)
        if function.unresolvable_syscall_site:
            # Number arrives in %edi (a parameter): mov %edi, %eax; syscall.
            asm.mov_reg_reg64(R.RAX, R.RDI)
            asm.syscall()
        for name in terminators:
            asm.call_import(name)
        for syscall_name in terminating_syscalls:
            self._emit_direct_syscall(syscall_name)
        asm.epilogue()

    def _emit_vector_call(self, kind: str, op_name: str) -> None:
        """``ioctl(fd, OP, ...)`` through the libc wrapper."""
        asm = self.asm
        code = _opcode_value(kind, op_name)
        if kind == "prctl":
            asm.mov_imm32(R.RDI, code)     # prctl(option, ...)
        else:
            asm.xor_reg(R.RDI)             # fd 0
            asm.mov_imm32(R.RSI, code)     # request/cmd
        asm.call_import(_VECTOR_SYSCALL_NAMES[kind])

    def _emit_direct_syscall(self, name: str) -> None:
        number = number_of(name)
        if number is None:
            raise KeyError(f"unknown syscall {name!r}")
        asm = self.asm
        if number == 0:
            asm.xor_reg(R.RAX)             # xor %eax,%eax == read
        else:
            asm.mov_imm32(R.RAX, number)
        asm.syscall()

    def _emit_int80_syscall(self, name: str) -> None:
        # Legacy 32-bit entry: different numbering is out of scope; the
        # study only counts the *instruction* for spotting raw sites.
        number = number_of(name)
        if number is None:
            raise KeyError(f"unknown syscall {name!r}")
        self.asm.mov_imm32(R.RAX, number)
        self.asm.int80()

    def _emit_wrapper_syscall(self, name: str) -> None:
        """``syscall(SYS_name, 0, 0)`` through libc's variadic wrapper."""
        number = number_of(name)
        if number is None:
            raise KeyError(f"unknown syscall {name!r}")
        asm = self.asm
        asm.mov_imm32(R.RDI, number)
        # Arguments are runtime values (emulated guest state); pass
        # them from callee-saved registers the analyzer cannot know.
        asm.mov_reg_reg64(R.RSI, R.R12)
        asm.mov_reg_reg64(R.RDX, R.R13)
        asm.call_import("syscall")

    def _emit_start(self, main_label: str) -> str:
        """Emit ``_start``: the crt0 stub calling main then exiting."""
        asm = self.asm
        asm.align(16)
        asm.label("_start")
        # Real crt0 passes main's address to __libc_start_main in %rdi.
        if "__libc_start_main" in self.writer.imports:
            asm.lea_rip_local(R.RDI, main_label)
            asm.call_import("__libc_start_main")
            asm.hlt()
        else:
            asm.call_local(main_label)
            asm.mov_imm32(R.RAX, 231)  # exit_group
            asm.syscall()
        return "_start"


def generate_binary(spec: BinarySpec) -> bytes:
    """Convenience wrapper: spec in, ELF bytes out."""
    return BinaryGenerator(spec).build()


def stable_seed(*parts: str) -> int:
    """Deterministic 64-bit seed from string parts (no Python hash
    randomization)."""
    digest = hashlib.sha256("\x00".join(parts).encode()).digest()
    return int.from_bytes(digest[:8], "little")
