"""Generation of the runtime libraries (synthetic glibc family).

Emits ELF shared objects for ``libc.so.6``, ``ld-linux-x86-64.so.2``,
``libpthread.so.0``, ``librt.so.1``, and ``libdl.so.2`` whose exported
functions contain real machine code issuing exactly the system calls
the catalogue (:mod:`repro.libc.symbols`, :mod:`repro.libc.runtime`)
attributes to them.  The analysis pipeline recovers per-export
footprints from these binaries by disassembly — the same way the paper
analyzed the real glibc.

Calibration notes:

* ``__libc_start_main`` carries the libc startup footprint (Table 5),
  so every program that links libc inherits it.
* The ``syscall`` export moves its *parameter* into ``%eax`` — an
  intentionally unresolvable site; callers passing an immediate are
  resolved at the call site instead (§2.4's dataflow limitation).
* Terminal functions carry their real ioctl opcodes (``TCGETS`` etc.),
  reproducing the paper's finding that a head of ~50 ioctl codes is
  reachable from essentially every program.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..libc import runtime as RT
from ..libc import symbols as LS
from .codegen import BinarySpec, FunctionSpec, generate_binary

# ioctl opcodes issued inside libc wrappers (carried as immediates).
LIBC_IOCTL_OPS: Dict[str, Tuple[str, ...]] = {
    "isatty": ("TCGETS",),
    "tcgetattr": ("TCGETS",),
    "tcsetattr": ("TCSETS", "TCSETSW", "TCSETSF"),
    "tcsendbreak": ("TCSBRK",),
    "tcdrain": ("TCSBRK",),
    "tcflush": ("TCFLSH",),
    "tcflow": ("TCXONC",),
    "tcgetpgrp": ("TIOCGPGRP",),
    "tcsetpgrp": ("TIOCSPGRP",),
    "tcgetsid": ("TIOCGSID",),
    "ttyname": ("TIOCGWINSZ",),
    "ttyname_r": ("TIOCGWINSZ",),
    "openpty": ("TIOCGPTN", "TIOCSPTLCK"),
    "grantpt": ("TIOCGPTN",),
    "unlockpt": ("TIOCSPTLCK",),
    "ptsname": ("TIOCGPTN",),
    "ptsname_r": ("TIOCGPTN",),
    "getpass": ("TCGETS", "TCSETSF"),
    "login_tty": ("TIOCSCTTY",),
    "if_nametoindex": ("SIOCGIFINDEX",),
    "if_indextoname": ("SIOCGIFNAME",),
}

# fcntl opcodes issued inside libc wrappers.
LIBC_FCNTL_OPS: Dict[str, Tuple[str, ...]] = {
    "fdopen": ("F_GETFL", "F_SETFD"),
    "fopen": ("F_SETFD",),
    "popen": ("F_SETFD",),
    "opendir": ("F_SETFD",),
    "fdopendir": ("F_GETFL", "F_SETFD"),
    "lockf": ("F_GETLK", "F_SETLK", "F_SETLKW"),
    "lockf64": ("F_GETLK", "F_SETLK", "F_SETLKW"),
    "daemon": ("F_GETFD",),
    "dup": ("F_DUPFD",),
}

# prctl opcodes issued inside libc/libpthread wrappers.
LIBC_PRCTL_OPS: Dict[str, Tuple[str, ...]] = {
    "pthread_setname_np": ("PR_SET_NAME",),
    "pthread_getname_np": ("PR_GET_NAME",),
}

# Pseudo-files referenced from inside libc (e.g. nss, terminals).
LIBC_PSEUDO_FILES: Dict[str, Tuple[str, ...]] = {
    "ptsname": ("/dev/pts",),
    "posix_openpt": ("/dev/ptmx",),
    "getpt": ("/dev/ptmx",),
    "ctermid": ("/dev/tty",),
    "getloadavg": ("/proc/loadavg",),
    "sysconf": ("/proc/meminfo", "/proc/stat"),
    "getpass": ("/dev/tty",),
}


def _libc_function(symbol: LS.LibcSymbol) -> FunctionSpec:
    if symbol.name == "syscall":
        return FunctionSpec(
            name=symbol.name,
            exported=True,
            unresolvable_syscall_site=True,
        )
    return FunctionSpec(
        name=symbol.name,
        direct_syscalls=tuple(symbol.syscalls),
        local_calls=tuple(
            callee for callee in symbol.internal_calls
            if callee in LS.BY_NAME),
        ioctl_ops=LIBC_IOCTL_OPS.get(symbol.name, ()),
        fcntl_ops=LIBC_FCNTL_OPS.get(symbol.name, ()),
        prctl_ops=LIBC_PRCTL_OPS.get(symbol.name, ()),
        strings=LIBC_PSEUDO_FILES.get(symbol.name, ()),
        exported=True,
    )


def generate_libc() -> bytes:
    """Emit the synthetic ``libc-2.21.so``."""
    functions: List[FunctionSpec] = []
    for symbol in LS.LIBC_SYMBOLS:
        spec = _libc_function(symbol)
        if symbol.name == "__libc_start_main":
            # Startup path (Table 5): issued for every program.  The
            # function then dispatches into main through the pointer
            # crt0 passed in %rdi — which is also what makes the
            # dynamic tracer execute application code.
            spec = FunctionSpec(
                name=spec.name,
                direct_syscalls=tuple(
                    sorted(set(spec.direct_syscalls)
                           | RT.LIBC_STARTUP_FOOTPRINT)),
                local_calls=spec.local_calls,
                indirect_call_reg=7,  # dispatch into main via %rdi
                syscalls_first=True,
                exported=True,
            )
        functions.append(spec)
    spec = BinarySpec(
        name="libc-2.21.so",
        functions=functions,
        needed=("ld-linux-x86-64.so.2",),
        soname="libc.so.6",
        entry_function=None,
        version="GLIBC_2.21",
    )
    return generate_binary(spec)


def generate_ld_so() -> bytes:
    """Emit the synthetic dynamic linker."""
    functions = [
        FunctionSpec(
            name="_dl_start",
            direct_syscalls=tuple(sorted(RT.LD_SO_FOOTPRINT)),
            strings=("/proc/self/exe",),
            exported=True,
        ),
    ]
    for export, syscalls in RT.LD_SO.export_syscalls.items():
        functions.append(FunctionSpec(
            name=export,
            direct_syscalls=tuple(syscalls),
            exported=True,
        ))
    spec = BinarySpec(
        name="ld-2.21.so",
        functions=functions,
        needed=(),
        soname=RT.LD_SO.soname,
        entry_function=None,
    )
    return generate_binary(spec)


def _runtime_library(library: RT.RuntimeLibrary,
                     startup_export: str) -> bytes:
    functions: List[FunctionSpec] = []
    for export in library.exports:
        syscalls = tuple(library.export_syscalls.get(export, ()))
        if export == startup_export:
            syscalls = tuple(sorted(set(syscalls)
                                    | library.startup_syscalls))
        functions.append(FunctionSpec(
            name=export,
            direct_syscalls=syscalls,
            prctl_ops=LIBC_PRCTL_OPS.get(export, ()),
            exported=True,
        ))
    spec = BinarySpec(
        name=library.soname,
        functions=functions,
        needed=("libc.so.6",),
        soname=library.soname,
        entry_function=None,
    )
    return generate_binary(spec)


def generate_libpthread() -> bytes:
    return _runtime_library(RT.LIBPTHREAD, "pthread_create")


def generate_librt() -> bytes:
    return _runtime_library(RT.LIBRT, "clock_gettime")


def generate_libdl() -> bytes:
    return _runtime_library(RT.LIBDL, "dlopen")


def generate_runtime_images() -> Dict[str, bytes]:
    """All runtime shared objects, keyed by SONAME."""
    return {
        "ld-linux-x86-64.so.2": generate_ld_so(),
        "libc.so.6": generate_libc(),
        "libpthread.so.0": generate_libpthread(),
        "librt.so.1": generate_librt(),
        "libdl.so.2": generate_libdl(),
    }
