"""ioctl operation codes (§3.3, Figure 4).

Linux 3.19 defines 635 ioctl operation codes in the mainline tree (the
paper's count); drivers can add more.  We encode the well-known core
codes by their real values — TTY, generic FIONREAD-family, block,
socket (SIOC*), and a representative sample of subsystem codes — and
model the remaining driver-defined tail with codes built by the same
``_IO(type, nr)`` macro arithmetic the kernel uses, attributed to
synthetic driver namespaces.  The *number* of codes, the split between
the ubiquitous TTY/generic head and the never-used tail, and the macro
encoding are all faithful; only the names of tail entries are
synthetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

TOTAL_DEFINED = 635  # ioctl codes defined in Linux 3.19 (paper, §3.3)


def _io(type_char: str, nr: int, size: int = 0, direction: int = 0) -> int:
    """The kernel's ``_IOC`` encoding: dir:2 size:14 type:8 nr:8."""
    return (direction << 30) | (size << 16) | (ord(type_char) << 8) | nr


@dataclass(frozen=True)
class IoctlDef:
    code: int
    name: str
    group: str   # "tty", "generic", "socket", "block", "kvm", "driver", ...


# 47 frequently-used TTY-console and generic-IO operations — the paper
# finds exactly this head has 100% API importance, plus 5 more from
# other groups to make 52 (§3.3).
_TTY_AND_GENERIC = [
    (0x5401, "TCGETS", "tty"),
    (0x5402, "TCSETS", "tty"),
    (0x5403, "TCSETSW", "tty"),
    (0x5404, "TCSETSF", "tty"),
    (0x5405, "TCGETA", "tty"),
    (0x5406, "TCSETA", "tty"),
    (0x5407, "TCSETAW", "tty"),
    (0x5408, "TCSETAF", "tty"),
    (0x5409, "TCSBRK", "tty"),
    (0x540A, "TCXONC", "tty"),
    (0x540B, "TCFLSH", "tty"),
    (0x540C, "TIOCEXCL", "tty"),
    (0x540D, "TIOCNXCL", "tty"),
    (0x540E, "TIOCSCTTY", "tty"),
    (0x540F, "TIOCGPGRP", "tty"),
    (0x5410, "TIOCSPGRP", "tty"),
    (0x5411, "TIOCOUTQ", "tty"),
    (0x5412, "TIOCSTI", "tty"),
    (0x5413, "TIOCGWINSZ", "tty"),
    (0x5414, "TIOCSWINSZ", "tty"),
    (0x5415, "TIOCMGET", "tty"),
    (0x5416, "TIOCMBIS", "tty"),
    (0x5417, "TIOCMBIC", "tty"),
    (0x5418, "TIOCMSET", "tty"),
    (0x5419, "TIOCGSOFTCAR", "tty"),
    (0x541A, "TIOCSSOFTCAR", "tty"),
    (0x541B, "FIONREAD", "generic"),
    (0x541C, "TIOCLINUX", "tty"),
    (0x541D, "TIOCCONS", "tty"),
    (0x541E, "TIOCGSERIAL", "tty"),
    (0x541F, "TIOCSSERIAL", "tty"),
    (0x5420, "TIOCPKT", "tty"),
    (0x5421, "FIONBIO", "generic"),
    (0x5422, "TIOCNOTTY", "tty"),
    (0x5423, "TIOCSETD", "tty"),
    (0x5424, "TIOCGETD", "tty"),
    (0x5425, "TCSBRKP", "tty"),
    (0x5427, "TIOCSBRK", "tty"),
    (0x5428, "TIOCCBRK", "tty"),
    (0x5429, "TIOCGSID", "tty"),
    (0x5430, "TIOCGPTN", "tty"),
    (0x5431, "TIOCSPTLCK", "tty"),
    (0x5432, "TIOCGDEV", "tty"),
    (0x5441, "TIOCGPTPEER", "tty"),
    (0x5450, "FIONCLEX", "generic"),
    (0x5451, "FIOCLEX", "generic"),
    (0x5452, "FIOASYNC", "generic"),
]

_COMMON_OTHER = [
    (0x8901, "FIOSETOWN", "socket"),
    (0x8903, "FIOGETOWN", "socket"),
    (0x8910, "SIOCGIFNAME", "socket"),
    (0x8912, "SIOCGIFCONF", "socket"),
    (0x8913, "SIOCGIFFLAGS", "socket"),
]

_SUBSYSTEM_SAMPLE = [
    (0x8915, "SIOCGIFADDR", "socket"),
    (0x8916, "SIOCSIFADDR", "socket"),
    (0x8919, "SIOCGIFBRDADDR", "socket"),
    (0x891B, "SIOCGIFNETMASK", "socket"),
    (0x8921, "SIOCGIFMEM", "socket"),
    (0x8927, "SIOCGIFHWADDR", "socket"),
    (0x8933, "SIOCGIFINDEX", "socket"),
    (0x8942, "SIOCGIFMAP", "socket"),
    (0x8946, "SIOCETHTOOL", "socket"),
    (0x894C, "SIOCGMIIPHY", "socket"),
    (0x1260, "BLKGETSIZE", "block"),
    (0x1261, "BLKFLSBUF", "block"),
    (0x1268, "BLKSSZGET", "block"),
    (0x127B, "BLKPBSZGET", "block"),
    (0x80081272, "BLKGETSIZE64", "block"),
    (0x125D, "BLKROGET", "block"),
    (0x125E, "BLKRRPART", "block"),
    (0x00005331, "CDROMEJECT", "cdrom"),
    (0x00005325, "CDROMREADTOCHDR", "cdrom"),
    (0x4B46, "KDGKBENT", "console"),
    (0x4B47, "KDSKBENT", "console"),
    (0x4B3A, "KDSETMODE", "console"),
    (0x4B3B, "KDGETMODE", "console"),
    (0x5604, "VT_ACTIVATE", "console"),
    (0x5605, "VT_WAITACTIVE", "console"),
    (0xAE01, "KVM_CREATE_VM", "kvm"),
    (0xAE03, "KVM_CHECK_EXTENSION", "kvm"),
    (0xAE41, "KVM_CREATE_VCPU", "kvm"),
    (0xAE80, "KVM_RUN", "kvm"),
    (0x40045431, "TUNSETIFF_LEGACY", "net-tun"),
    (0x400454CA, "TUNSETIFF", "net-tun"),
    (0x800454D2, "TUNGETIFF", "net-tun"),
    (0xC0105512, "EVIOCGVERSION_X", "input"),
    (0x80044500, "EVIOCGVERSION", "input"),
    (0x80084502, "EVIOCGID", "input"),
    (0xC008561B, "FBIOGET_VSCREENINFO", "fb"),
    (0x4600, "FBIOGET_VSCREENINFO_L", "fb"),
    (0x4601, "FBIOPUT_VSCREENINFO", "fb"),
    (0x4602, "FBIOGET_FSCREENINFO", "fb"),
    (0xC020660B, "FS_IOC_FIEMAP", "fs"),
    (0x80086601, "FS_IOC_GETFLAGS", "fs"),
    (0x40086602, "FS_IOC_SETFLAGS", "fs"),
    (0x00,  "SNDCTL_DSP_RESET", "sound"),
    (0xC0045002, "SNDCTL_DSP_SPEED", "sound"),
    (0x2285, "SG_IO", "scsi"),
    (0x2272, "SG_GET_VERSION_NUM", "scsi"),
    (0x5331, "LOOP_SET_FD_X", "loop"),
    (0x4C00, "LOOP_SET_FD", "loop"),
    (0x4C01, "LOOP_CLR_FD", "loop"),
    (0x4C82, "LOOP_CTL_GET_FREE", "loop"),
]


def _build() -> List[IoctlDef]:
    seen: Dict[int, IoctlDef] = {}
    for code, name, group in (
            _TTY_AND_GENERIC + _COMMON_OTHER + _SUBSYSTEM_SAMPLE):
        if code not in seen:
            seen[code] = IoctlDef(code, name, group)
    # Fill the remaining driver-defined tail with codes generated by the
    # same _IO() macro the kernel uses, across synthetic driver types.
    driver_types = "qwzxjvumnbt"
    nr = 0
    type_index = 0
    while len(seen) < TOTAL_DEFINED:
        type_char = driver_types[type_index % len(driver_types)]
        code = _io(type_char, nr % 256, size=(nr // 256) % 0x4000)
        if code not in seen:
            seen[code] = IoctlDef(
                code, f"DRV_{type_char.upper()}_OP{nr:03d}", "driver")
        nr += 1
        if nr % 256 == 0:
            type_index += 1
    return sorted(seen.values(), key=lambda d: d.code)


IOCTLS: List[IoctlDef] = _build()
BY_CODE: Dict[int, IoctlDef] = {d.code: d for d in IOCTLS}
BY_NAME: Dict[str, IoctlDef] = {d.name: d for d in IOCTLS}

# The 52 operations the paper finds at 100% API importance: 47 TTY /
# generic plus 5 common socket ownership / interface queries.
UBIQUITOUS_NAMES = tuple(
    name for _, name, _ in _TTY_AND_GENERIC + _COMMON_OTHER)

# Operations seen in at least one binary (280 of 635, §3.3): the
# ubiquitous head, the subsystem sample, and part of the driver tail.
def used_names(count: int = 280) -> List[str]:
    """The ``count`` codes that appear in at least one binary."""
    ordered = ([d.name for d in IOCTLS if d.group != "driver"]
               + [d.name for d in IOCTLS if d.group == "driver"])
    return ordered[:count]
