"""API variant groups studied in §5 (Tables 8–11).

Each group relates system calls that offer overlapping functionality,
so that unweighted API importance can be compared within the group:
secure vs. insecure, old vs. new, Linux-specific vs. portable, and
simple vs. powerful variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class VariantPair:
    """Two related APIs and the axis along which they differ."""

    left: str          # e.g. the insecure / old / Linux-specific API
    right: str         # e.g. the secure / new / portable API
    axis: str          # "security", "deprecation", "portability", "power"
    note: str = ""


# Table 8 — insecure vs. secure variants.
SECURE_VARIANTS: List[VariantPair] = [
    VariantPair("setuid", "setresuid", "security",
                "unclear vs. well-defined ID management semantics"),
    VariantPair("setreuid", "setresuid", "security",
                "unclear vs. well-defined ID management semantics"),
    VariantPair("setgid", "setresgid", "security",
                "unclear vs. well-defined ID management semantics"),
    VariantPair("setregid", "setresgid", "security",
                "unclear vs. well-defined ID management semantics"),
    VariantPair("getuid", "getresuid", "security", "ID queries"),
    VariantPair("geteuid", "getresuid", "security", "ID queries"),
    VariantPair("getgid", "getresgid", "security", "ID queries"),
    VariantPair("getegid", "getresgid", "security", "ID queries"),
    VariantPair("access", "faccessat", "security",
                "non-atomic vs. atomic directory operation (TOCTTOU)"),
    VariantPair("mkdir", "mkdirat", "security", "TOCTTOU"),
    VariantPair("rename", "renameat", "security", "TOCTTOU"),
    VariantPair("readlink", "readlinkat", "security", "TOCTTOU"),
    VariantPair("chown", "fchownat", "security", "TOCTTOU"),
    VariantPair("chmod", "fchmodat", "security", "TOCTTOU"),
]

# Table 9 — old (deprecated) vs. new (preferred) variants.
OLD_NEW_VARIANTS: List[VariantPair] = [
    VariantPair("getdents", "getdents64", "deprecation", ""),
    VariantPair("utime", "utimes", "deprecation", ""),
    VariantPair("fork", "clone", "deprecation",
                "libc implements fork() via clone"),
    VariantPair("vfork", "clone", "deprecation", ""),
    VariantPair("tkill", "tgkill", "deprecation", ""),
    VariantPair("wait4", "waitid", "deprecation",
                "wait4 considered obsolete; waitid preferred"),
]

# Table 10 — Linux-specific vs. portable/generic variants.
PORTABILITY_VARIANTS: List[VariantPair] = [
    VariantPair("preadv", "readv", "portability", ""),
    VariantPair("pwritev", "writev", "portability", ""),
    VariantPair("accept4", "accept", "portability", ""),
    VariantPair("ppoll", "poll", "portability", ""),
    VariantPair("recvmmsg", "recvmsg", "portability", ""),
    VariantPair("sendmmsg", "sendmsg", "portability", ""),
    VariantPair("pipe2", "pipe", "portability",
                "pipe2 is the one Linux-specific call with high usage"),
]

# Table 11 — more-powerful vs. simpler variants.
POWER_VARIANTS: List[VariantPair] = [
    VariantPair("pread64", "read", "power", ""),
    VariantPair("dup3", "dup2", "power", ""),
    VariantPair("dup3", "dup", "power", ""),
    VariantPair("recvmsg", "recvfrom", "power", ""),
    VariantPair("sendmsg", "sendto", "power", ""),
    VariantPair("pselect6", "select", "power", ""),
    VariantPair("fchdir", "chdir", "power", ""),
]

ALL_VARIANT_GROUPS: List[Tuple[str, List[VariantPair]]] = [
    ("secure", SECURE_VARIANTS),
    ("old-new", OLD_NEW_VARIANTS),
    ("portability", PORTABILITY_VARIANTS),
    ("power", POWER_VARIANTS),
]


def all_variant_names() -> List[str]:
    """Every syscall name that appears in some variant group."""
    names = []
    for _, group in ALL_VARIANT_GROUPS:
        for pair in group:
            for name in (pair.left, pair.right):
                if name not in names:
                    names.append(name)
    return names
