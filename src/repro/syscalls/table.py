"""The x86-64 Linux 3.19 system call table.

This mirrors ``arch/x86/syscalls/syscall_64.tbl`` at kernel 3.19 — the
kernel version Ubuntu 15.04 shipped and the version the paper studies.
Each entry carries a category (used for staging and reporting) and a
lifecycle status:

* ``LIVE`` — implemented and callable.
* ``RETIRED`` — number reserved, entry point removed or never wired on
  x86-64 (``sys_ni_syscall``); §3.1 calls these "officially retired".
* ``KERNEL_INTERNAL`` — defined and implemented, but never issued
  directly by applications (``restart_syscall``).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional


class Lifecycle(Enum):
    LIVE = "live"
    RETIRED = "retired"
    KERNEL_INTERNAL = "kernel-internal"


@dataclass(frozen=True)
class SyscallDef:
    """One row of the syscall table."""

    number: int
    name: str
    category: str
    lifecycle: Lifecycle = Lifecycle.LIVE

    @property
    def is_live(self) -> bool:
        return self.lifecycle == Lifecycle.LIVE


_RETIRED = {
    "uselib", "create_module", "get_kernel_syms", "query_module",
    "nfsservctl", "getpmsg", "putpmsg", "afs_syscall", "tuxcall",
    "security", "vserver", "set_thread_area", "get_thread_area",
    "epoll_ctl_old", "epoll_wait_old", "_sysctl",
}

# (number, name, category) in syscall_64.tbl order.
_TABLE = [
    (0, "read", "file"),
    (1, "write", "file"),
    (2, "open", "file"),
    (3, "close", "file"),
    (4, "stat", "file"),
    (5, "fstat", "file"),
    (6, "lstat", "file"),
    (7, "poll", "poll"),
    (8, "lseek", "file"),
    (9, "mmap", "memory"),
    (10, "mprotect", "memory"),
    (11, "munmap", "memory"),
    (12, "brk", "memory"),
    (13, "rt_sigaction", "signal"),
    (14, "rt_sigprocmask", "signal"),
    (15, "rt_sigreturn", "signal"),
    (16, "ioctl", "vectored"),
    (17, "pread64", "file"),
    (18, "pwrite64", "file"),
    (19, "readv", "file"),
    (20, "writev", "file"),
    (21, "access", "file"),
    (22, "pipe", "ipc"),
    (23, "select", "poll"),
    (24, "sched_yield", "sched"),
    (25, "mremap", "memory"),
    (26, "msync", "memory"),
    (27, "mincore", "memory"),
    (28, "madvise", "memory"),
    (29, "shmget", "ipc"),
    (30, "shmat", "ipc"),
    (31, "shmctl", "ipc"),
    (32, "dup", "file"),
    (33, "dup2", "file"),
    (34, "pause", "signal"),
    (35, "nanosleep", "time"),
    (36, "getitimer", "time"),
    (37, "alarm", "time"),
    (38, "setitimer", "time"),
    (39, "getpid", "process"),
    (40, "sendfile", "file"),
    (41, "socket", "network"),
    (42, "connect", "network"),
    (43, "accept", "network"),
    (44, "sendto", "network"),
    (45, "recvfrom", "network"),
    (46, "sendmsg", "network"),
    (47, "recvmsg", "network"),
    (48, "shutdown", "network"),
    (49, "bind", "network"),
    (50, "listen", "network"),
    (51, "getsockname", "network"),
    (52, "getpeername", "network"),
    (53, "socketpair", "network"),
    (54, "setsockopt", "network"),
    (55, "getsockopt", "network"),
    (56, "clone", "process"),
    (57, "fork", "process"),
    (58, "vfork", "process"),
    (59, "execve", "process"),
    (60, "exit", "process"),
    (61, "wait4", "process"),
    (62, "kill", "signal"),
    (63, "uname", "system"),
    (64, "semget", "ipc"),
    (65, "semop", "ipc"),
    (66, "semctl", "ipc"),
    (67, "shmdt", "ipc"),
    (68, "msgget", "ipc"),
    (69, "msgsnd", "ipc"),
    (70, "msgrcv", "ipc"),
    (71, "msgctl", "ipc"),
    (72, "fcntl", "vectored"),
    (73, "flock", "file"),
    (74, "fsync", "file"),
    (75, "fdatasync", "file"),
    (76, "truncate", "file"),
    (77, "ftruncate", "file"),
    (78, "getdents", "file"),
    (79, "getcwd", "file"),
    (80, "chdir", "file"),
    (81, "fchdir", "file"),
    (82, "rename", "file"),
    (83, "mkdir", "file"),
    (84, "rmdir", "file"),
    (85, "creat", "file"),
    (86, "link", "file"),
    (87, "unlink", "file"),
    (88, "symlink", "file"),
    (89, "readlink", "file"),
    (90, "chmod", "file"),
    (91, "fchmod", "file"),
    (92, "chown", "file"),
    (93, "fchown", "file"),
    (94, "lchown", "file"),
    (95, "umask", "process"),
    (96, "gettimeofday", "time"),
    (97, "getrlimit", "process"),
    (98, "getrusage", "process"),
    (99, "sysinfo", "system"),
    (100, "times", "time"),
    (101, "ptrace", "debug"),
    (102, "getuid", "identity"),
    (103, "syslog", "system"),
    (104, "getgid", "identity"),
    (105, "setuid", "identity"),
    (106, "setgid", "identity"),
    (107, "geteuid", "identity"),
    (108, "getegid", "identity"),
    (109, "setpgid", "process"),
    (110, "getppid", "process"),
    (111, "getpgrp", "process"),
    (112, "setsid", "process"),
    (113, "setreuid", "identity"),
    (114, "setregid", "identity"),
    (115, "getgroups", "identity"),
    (116, "setgroups", "identity"),
    (117, "setresuid", "identity"),
    (118, "getresuid", "identity"),
    (119, "setresgid", "identity"),
    (120, "getresgid", "identity"),
    (121, "getpgid", "process"),
    (122, "setfsuid", "identity"),
    (123, "setfsgid", "identity"),
    (124, "getsid", "process"),
    (125, "capget", "security"),
    (126, "capset", "security"),
    (127, "rt_sigpending", "signal"),
    (128, "rt_sigtimedwait", "signal"),
    (129, "rt_sigqueueinfo", "signal"),
    (130, "rt_sigsuspend", "signal"),
    (131, "sigaltstack", "signal"),
    (132, "utime", "file"),
    (133, "mknod", "file"),
    (134, "uselib", "module"),
    (135, "personality", "process"),
    (136, "ustat", "file"),
    (137, "statfs", "file"),
    (138, "fstatfs", "file"),
    (139, "sysfs", "system"),
    (140, "getpriority", "sched"),
    (141, "setpriority", "sched"),
    (142, "sched_setparam", "sched"),
    (143, "sched_getparam", "sched"),
    (144, "sched_setscheduler", "sched"),
    (145, "sched_getscheduler", "sched"),
    (146, "sched_get_priority_max", "sched"),
    (147, "sched_get_priority_min", "sched"),
    (148, "sched_rr_get_interval", "sched"),
    (149, "mlock", "memory"),
    (150, "munlock", "memory"),
    (151, "mlockall", "memory"),
    (152, "munlockall", "memory"),
    (153, "vhangup", "system"),
    (154, "modify_ldt", "arch"),
    (155, "pivot_root", "system"),
    (156, "_sysctl", "system"),
    (157, "prctl", "vectored"),
    (158, "arch_prctl", "arch"),
    (159, "adjtimex", "time"),
    (160, "setrlimit", "process"),
    (161, "chroot", "file"),
    (162, "sync", "file"),
    (163, "acct", "system"),
    (164, "settimeofday", "time"),
    (165, "mount", "system"),
    (166, "umount2", "system"),
    (167, "swapon", "system"),
    (168, "swapoff", "system"),
    (169, "reboot", "system"),
    (170, "sethostname", "system"),
    (171, "setdomainname", "system"),
    (172, "iopl", "arch"),
    (173, "ioperm", "arch"),
    (174, "create_module", "module"),
    (175, "init_module", "module"),
    (176, "delete_module", "module"),
    (177, "get_kernel_syms", "module"),
    (178, "query_module", "module"),
    (179, "quotactl", "file"),
    (180, "nfsservctl", "system"),
    (181, "getpmsg", "stream"),
    (182, "putpmsg", "stream"),
    (183, "afs_syscall", "stream"),
    (184, "tuxcall", "stream"),
    (185, "security", "stream"),
    (186, "gettid", "process"),
    (187, "readahead", "file"),
    (188, "setxattr", "xattr"),
    (189, "lsetxattr", "xattr"),
    (190, "fsetxattr", "xattr"),
    (191, "getxattr", "xattr"),
    (192, "lgetxattr", "xattr"),
    (193, "fgetxattr", "xattr"),
    (194, "listxattr", "xattr"),
    (195, "llistxattr", "xattr"),
    (196, "flistxattr", "xattr"),
    (197, "removexattr", "xattr"),
    (198, "lremovexattr", "xattr"),
    (199, "fremovexattr", "xattr"),
    (200, "tkill", "signal"),
    (201, "time", "time"),
    (202, "futex", "sync"),
    (203, "sched_setaffinity", "sched"),
    (204, "sched_getaffinity", "sched"),
    (205, "set_thread_area", "arch"),
    (206, "io_setup", "aio"),
    (207, "io_destroy", "aio"),
    (208, "io_getevents", "aio"),
    (209, "io_submit", "aio"),
    (210, "io_cancel", "aio"),
    (211, "get_thread_area", "arch"),
    (212, "lookup_dcookie", "debug"),
    (213, "epoll_create", "poll"),
    (214, "epoll_ctl_old", "poll"),
    (215, "epoll_wait_old", "poll"),
    (216, "remap_file_pages", "memory"),
    (217, "getdents64", "file"),
    (218, "set_tid_address", "process"),
    (219, "restart_syscall", "signal"),
    (220, "semtimedop", "ipc"),
    (221, "fadvise64", "file"),
    (222, "timer_create", "time"),
    (223, "timer_settime", "time"),
    (224, "timer_gettime", "time"),
    (225, "timer_getoverrun", "time"),
    (226, "timer_delete", "time"),
    (227, "clock_settime", "time"),
    (228, "clock_gettime", "time"),
    (229, "clock_getres", "time"),
    (230, "clock_nanosleep", "time"),
    (231, "exit_group", "process"),
    (232, "epoll_wait", "poll"),
    (233, "epoll_ctl", "poll"),
    (234, "tgkill", "signal"),
    (235, "utimes", "file"),
    (236, "vserver", "stream"),
    (237, "mbind", "numa"),
    (238, "set_mempolicy", "numa"),
    (239, "get_mempolicy", "numa"),
    (240, "mq_open", "mqueue"),
    (241, "mq_unlink", "mqueue"),
    (242, "mq_timedsend", "mqueue"),
    (243, "mq_timedreceive", "mqueue"),
    (244, "mq_notify", "mqueue"),
    (245, "mq_getsetattr", "mqueue"),
    (246, "kexec_load", "system"),
    (247, "waitid", "process"),
    (248, "add_key", "key"),
    (249, "request_key", "key"),
    (250, "keyctl", "key"),
    (251, "ioprio_set", "sched"),
    (252, "ioprio_get", "sched"),
    (253, "inotify_init", "notify"),
    (254, "inotify_add_watch", "notify"),
    (255, "inotify_rm_watch", "notify"),
    (256, "migrate_pages", "numa"),
    (257, "openat", "file-at"),
    (258, "mkdirat", "file-at"),
    (259, "mknodat", "file-at"),
    (260, "fchownat", "file-at"),
    (261, "futimesat", "file-at"),
    (262, "newfstatat", "file-at"),
    (263, "unlinkat", "file-at"),
    (264, "renameat", "file-at"),
    (265, "linkat", "file-at"),
    (266, "symlinkat", "file-at"),
    (267, "readlinkat", "file-at"),
    (268, "fchmodat", "file-at"),
    (269, "faccessat", "file-at"),
    (270, "pselect6", "poll"),
    (271, "ppoll", "poll"),
    (272, "unshare", "namespace"),
    (273, "set_robust_list", "sync"),
    (274, "get_robust_list", "sync"),
    (275, "splice", "file"),
    (276, "tee", "file"),
    (277, "sync_file_range", "file"),
    (278, "vmsplice", "file"),
    (279, "move_pages", "numa"),
    (280, "utimensat", "file-at"),
    (281, "epoll_pwait", "poll"),
    (282, "signalfd", "signal"),
    (283, "timerfd_create", "time"),
    (284, "eventfd", "ipc"),
    (285, "fallocate", "file"),
    (286, "timerfd_settime", "time"),
    (287, "timerfd_gettime", "time"),
    (288, "accept4", "network"),
    (289, "signalfd4", "signal"),
    (290, "eventfd2", "ipc"),
    (291, "epoll_create1", "poll"),
    (292, "dup3", "file"),
    (293, "pipe2", "ipc"),
    (294, "inotify_init1", "notify"),
    (295, "preadv", "file"),
    (296, "pwritev", "file"),
    (297, "rt_tgsigqueueinfo", "signal"),
    (298, "perf_event_open", "debug"),
    (299, "recvmmsg", "network"),
    (300, "fanotify_init", "notify"),
    (301, "fanotify_mark", "notify"),
    (302, "prlimit64", "process"),
    (303, "name_to_handle_at", "file-at"),
    (304, "open_by_handle_at", "file-at"),
    (305, "clock_adjtime", "time"),
    (306, "syncfs", "file"),
    (307, "sendmmsg", "network"),
    (308, "setns", "namespace"),
    (309, "getcpu", "sched"),
    (310, "process_vm_readv", "debug"),
    (311, "process_vm_writev", "debug"),
    (312, "kcmp", "debug"),
    (313, "finit_module", "module"),
    (314, "sched_setattr", "sched"),
    (315, "sched_getattr", "sched"),
    (316, "renameat2", "file-at"),
    (317, "seccomp", "security"),
    (318, "getrandom", "security"),
    (319, "memfd_create", "memory"),
    (320, "kexec_file_load", "system"),
    (321, "bpf", "security"),
    (322, "execveat", "process"),
]


def _build() -> List[SyscallDef]:
    table = []
    for number, name, category in _TABLE:
        if name in _RETIRED:
            lifecycle = Lifecycle.RETIRED
        elif name == "restart_syscall":
            lifecycle = Lifecycle.KERNEL_INTERNAL
        else:
            lifecycle = Lifecycle.LIVE
        table.append(SyscallDef(number, name, category, lifecycle))
    return table


SYSCALLS: List[SyscallDef] = _build()
SYSCALL_COUNT = len(SYSCALLS)

BY_NAME: Dict[str, SyscallDef] = {s.name: s for s in SYSCALLS}
BY_NUMBER: Dict[int, SyscallDef] = {s.number: s for s in SYSCALLS}

ALL_NAMES = frozenset(BY_NAME)
LIVE_NAMES = frozenset(s.name for s in SYSCALLS if s.is_live)
RETIRED_NAMES = frozenset(
    s.name for s in SYSCALLS if s.lifecycle == Lifecycle.RETIRED)

# The vectored system calls of §3.3: their first (or second) argument
# selects a secondary operation from a large table.
VECTORED_SYSCALLS = ("ioctl", "fcntl", "prctl")


def lookup(name_or_number) -> Optional[SyscallDef]:
    """Find a syscall by name or by number; ``None`` if undefined."""
    if isinstance(name_or_number, int):
        return BY_NUMBER.get(name_or_number)
    return BY_NAME.get(name_or_number)


def name_of(number: int) -> Optional[str]:
    entry = BY_NUMBER.get(number)
    return entry.name if entry else None


def number_of(name: str) -> Optional[int]:
    entry = BY_NAME.get(name)
    return entry.number if entry else None


def categories() -> Dict[str, List[SyscallDef]]:
    """Group the table by category."""
    grouped: Dict[str, List[SyscallDef]] = {}
    for entry in SYSCALLS:
        grouped.setdefault(entry.category, []).append(entry)
    return grouped
