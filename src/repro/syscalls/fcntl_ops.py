"""fcntl operation codes (§3.3, Figure 5 left).

Linux 3.19 defines 18 fcntl operations reachable on x86-64 (the paper's
count).  Unlike ioctl, the table is closed — modules cannot extend it —
and usage concentrates: eleven operations sit at ~100% API importance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class FcntlDef:
    code: int
    name: str


FCNTLS: List[FcntlDef] = [
    FcntlDef(0, "F_DUPFD"),
    FcntlDef(1, "F_GETFD"),
    FcntlDef(2, "F_SETFD"),
    FcntlDef(3, "F_GETFL"),
    FcntlDef(4, "F_SETFL"),
    FcntlDef(5, "F_GETLK"),
    FcntlDef(6, "F_SETLK"),
    FcntlDef(7, "F_SETLKW"),
    FcntlDef(8, "F_SETOWN"),
    FcntlDef(9, "F_GETOWN"),
    FcntlDef(10, "F_SETSIG"),
    FcntlDef(11, "F_GETSIG"),
    FcntlDef(1024, "F_SETLEASE"),
    FcntlDef(1025, "F_GETLEASE"),
    FcntlDef(1026, "F_NOTIFY"),
    FcntlDef(1030, "F_DUPFD_CLOEXEC"),
    FcntlDef(1031, "F_SETPIPE_SZ"),
    FcntlDef(1032, "F_GETPIPE_SZ"),
]

BY_CODE: Dict[int, FcntlDef] = {d.code: d for d in FCNTLS}
BY_NAME: Dict[str, FcntlDef] = {d.name: d for d in FCNTLS}

TOTAL_DEFINED = len(FCNTLS)

# The eleven operations at ~100% importance (§3.3): dup/flag/lock
# management that libc and every dynamically linked program touches.
UBIQUITOUS_NAMES = (
    "F_DUPFD", "F_GETFD", "F_SETFD", "F_GETFL", "F_SETFL",
    "F_GETLK", "F_SETLK", "F_SETLKW", "F_SETOWN", "F_GETOWN",
    "F_DUPFD_CLOEXEC",
)
