"""Linux 3.19 x86-64 API surface catalogues.

Covers the system call table, the vectored operation tables (ioctl,
fcntl, prctl), pseudo-file paths, and the API variant groups studied in
the paper's Section 5.
"""

from . import fcntl_ops, ioctl, prctl_ops, pseudofiles, variants
from .table import (
    ALL_NAMES,
    BY_NAME,
    BY_NUMBER,
    LIVE_NAMES,
    RETIRED_NAMES,
    SYSCALL_COUNT,
    SYSCALLS,
    VECTORED_SYSCALLS,
    Lifecycle,
    SyscallDef,
    categories,
    lookup,
    name_of,
    number_of,
)

__all__ = [
    "ALL_NAMES",
    "BY_NAME",
    "BY_NUMBER",
    "LIVE_NAMES",
    "RETIRED_NAMES",
    "SYSCALL_COUNT",
    "SYSCALLS",
    "VECTORED_SYSCALLS",
    "Lifecycle",
    "SyscallDef",
    "categories",
    "fcntl_ops",
    "ioctl",
    "lookup",
    "name_of",
    "number_of",
    "prctl_ops",
    "pseudofiles",
    "variants",
]
