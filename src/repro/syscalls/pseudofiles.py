"""Pseudo-file and pseudo-device APIs (§3.4, Figure 6).

Linux exports a second API surface through ``/proc``, ``/dev``, and
``/sys``.  This catalogue lists the paths the study observes hard-coded
in binaries, grouped by filesystem and annotated with the paper's
qualitative findings (essential head, application-specific middle,
administrator-only tail).

Paths containing ``%`` are printf-style patterns: the study explicitly
captures ``sprintf("/proc/%d/cmdline", pid)``-style construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class PseudoFileDef:
    path: str          # may contain printf-style placeholders
    filesystem: str    # "proc", "dev", or "sys"
    tier: str          # "essential", "common", "specific", "admin"


PSEUDO_FILES: List[PseudoFileDef] = [
    # --- essential: used by thousands of binaries ---
    PseudoFileDef("/dev/null", "dev", "essential"),
    PseudoFileDef("/dev/zero", "dev", "essential"),
    PseudoFileDef("/dev/tty", "dev", "essential"),
    PseudoFileDef("/dev/urandom", "dev", "essential"),
    PseudoFileDef("/proc/cpuinfo", "proc", "essential"),
    PseudoFileDef("/proc/self/exe", "proc", "essential"),
    PseudoFileDef("/proc/meminfo", "proc", "essential"),
    PseudoFileDef("/proc/self/stat", "proc", "essential"),
    PseudoFileDef("/proc/self/maps", "proc", "essential"),
    PseudoFileDef("/proc/filesystems", "proc", "essential"),
    # --- common: widely but not universally used ---
    PseudoFileDef("/dev/console", "dev", "common"),
    PseudoFileDef("/dev/ptmx", "dev", "common"),
    PseudoFileDef("/dev/pts", "dev", "common"),
    PseudoFileDef("/dev/random", "dev", "common"),
    PseudoFileDef("/dev/stdin", "dev", "common"),
    PseudoFileDef("/dev/stdout", "dev", "common"),
    PseudoFileDef("/dev/stderr", "dev", "common"),
    PseudoFileDef("/dev/full", "dev", "common"),
    PseudoFileDef("/proc/mounts", "proc", "common"),
    PseudoFileDef("/proc/stat", "proc", "common"),
    PseudoFileDef("/proc/uptime", "proc", "common"),
    PseudoFileDef("/proc/loadavg", "proc", "common"),
    PseudoFileDef("/proc/version", "proc", "common"),
    PseudoFileDef("/proc/%d/cmdline", "proc", "common"),
    PseudoFileDef("/proc/%d/stat", "proc", "common"),
    PseudoFileDef("/proc/%d/status", "proc", "common"),
    PseudoFileDef("/proc/%d/fd", "proc", "common"),
    PseudoFileDef("/proc/self/fd", "proc", "common"),
    PseudoFileDef("/proc/net/dev", "proc", "common"),
    PseudoFileDef("/proc/net/tcp", "proc", "common"),
    PseudoFileDef("/sys/devices/system/cpu", "sys", "common"),
    # --- application-specific: one or two dedicated users ---
    PseudoFileDef("/dev/kvm", "dev", "specific"),
    PseudoFileDef("/dev/fuse", "dev", "specific"),
    PseudoFileDef("/dev/net/tun", "dev", "specific"),
    PseudoFileDef("/dev/loop-control", "dev", "specific"),
    PseudoFileDef("/dev/snd/controlC0", "dev", "specific"),
    PseudoFileDef("/dev/input/event0", "dev", "specific"),
    PseudoFileDef("/dev/fb0", "dev", "specific"),
    PseudoFileDef("/dev/sr0", "dev", "specific"),
    PseudoFileDef("/dev/hda", "dev", "specific"),
    PseudoFileDef("/dev/sda", "dev", "specific"),
    PseudoFileDef("/dev/mem", "dev", "specific"),
    PseudoFileDef("/dev/rtc", "dev", "specific"),
    PseudoFileDef("/dev/watchdog", "dev", "specific"),
    PseudoFileDef("/proc/kallsyms", "proc", "specific"),
    PseudoFileDef("/proc/modules", "proc", "specific"),
    PseudoFileDef("/proc/kcore", "proc", "specific"),
    PseudoFileDef("/proc/sysrq-trigger", "proc", "specific"),
    PseudoFileDef("/proc/%d/oom_score_adj", "proc", "specific"),
    PseudoFileDef("/proc/%d/environ", "proc", "specific"),
    PseudoFileDef("/proc/self/mountinfo", "proc", "specific"),
    PseudoFileDef("/sys/module", "sys", "specific"),
    PseudoFileDef("/sys/class/net", "sys", "specific"),
    PseudoFileDef("/sys/block", "sys", "specific"),
    PseudoFileDef("/sys/bus/pci/devices", "sys", "specific"),
    PseudoFileDef("/sys/power/state", "sys", "specific"),
    # --- admin-only tail: touched from shells/scripts, rarely binaries ---
    PseudoFileDef("/proc/sys/kernel/hostname", "proc", "admin"),
    PseudoFileDef("/proc/sys/kernel/osrelease", "proc", "admin"),
    PseudoFileDef("/proc/sys/vm/drop_caches", "proc", "admin"),
    PseudoFileDef("/proc/sys/net/ipv4/ip_forward", "proc", "admin"),
    PseudoFileDef("/proc/swaps", "proc", "admin"),
    PseudoFileDef("/proc/partitions", "proc", "admin"),
    PseudoFileDef("/proc/interrupts", "proc", "admin"),
    PseudoFileDef("/proc/diskstats", "proc", "admin"),
    PseudoFileDef("/proc/buddyinfo", "proc", "admin"),
    PseudoFileDef("/proc/slabinfo", "proc", "admin"),
    PseudoFileDef("/proc/vmstat", "proc", "admin"),
    PseudoFileDef("/proc/zoneinfo", "proc", "admin"),
    PseudoFileDef("/sys/kernel/mm/transparent_hugepage/enabled",
                  "sys", "admin"),
    PseudoFileDef("/sys/kernel/debug", "sys", "admin"),
    PseudoFileDef("/dev/port", "dev", "admin"),
    PseudoFileDef("/dev/cpu/0/msr", "dev", "admin"),
]

BY_PATH: Dict[str, PseudoFileDef] = {d.path: d for d in PSEUDO_FILES}

ESSENTIAL_PATHS = tuple(
    d.path for d in PSEUDO_FILES if d.tier == "essential")


def by_tier(tier: str) -> List[PseudoFileDef]:
    return [d for d in PSEUDO_FILES if d.tier == tier]


def by_filesystem(filesystem: str) -> List[PseudoFileDef]:
    return [d for d in PSEUDO_FILES if d.filesystem == filesystem]


def is_pseudo_path(text: str) -> bool:
    """True when a string looks like a /proc, /dev, or /sys reference."""
    return text.startswith(("/proc/", "/dev/", "/sys/")) or text in (
        "/proc", "/dev", "/sys")
