"""prctl operation codes (§3.3, Figure 5 right).

Linux 3.19 defines 44 prctl operations (the paper's count).  Only nine
sit near 100% API importance; eighteen exceed 20%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class PrctlDef:
    code: int
    name: str


PRCTLS: List[PrctlDef] = [
    PrctlDef(1, "PR_SET_PDEATHSIG"),
    PrctlDef(2, "PR_GET_PDEATHSIG"),
    PrctlDef(3, "PR_GET_DUMPABLE"),
    PrctlDef(4, "PR_SET_DUMPABLE"),
    PrctlDef(5, "PR_GET_UNALIGN"),
    PrctlDef(6, "PR_SET_UNALIGN"),
    PrctlDef(7, "PR_GET_KEEPCAPS"),
    PrctlDef(8, "PR_SET_KEEPCAPS"),
    PrctlDef(9, "PR_GET_FPEMU"),
    PrctlDef(10, "PR_SET_FPEMU"),
    PrctlDef(11, "PR_GET_FPEXC"),
    PrctlDef(12, "PR_SET_FPEXC"),
    PrctlDef(13, "PR_GET_TIMING"),
    PrctlDef(14, "PR_SET_TIMING"),
    PrctlDef(15, "PR_SET_NAME"),
    PrctlDef(16, "PR_GET_NAME"),
    PrctlDef(19, "PR_GET_ENDIAN"),
    PrctlDef(20, "PR_SET_ENDIAN"),
    PrctlDef(21, "PR_GET_SECCOMP"),
    PrctlDef(22, "PR_SET_SECCOMP"),
    PrctlDef(23, "PR_CAPBSET_READ"),
    PrctlDef(24, "PR_CAPBSET_DROP"),
    PrctlDef(25, "PR_GET_TSC"),
    PrctlDef(26, "PR_SET_TSC"),
    PrctlDef(27, "PR_GET_SECUREBITS"),
    PrctlDef(28, "PR_SET_SECUREBITS"),
    PrctlDef(29, "PR_SET_TIMERSLACK"),
    PrctlDef(30, "PR_GET_TIMERSLACK"),
    PrctlDef(31, "PR_TASK_PERF_EVENTS_DISABLE"),
    PrctlDef(32, "PR_TASK_PERF_EVENTS_ENABLE"),
    PrctlDef(33, "PR_MCE_KILL"),
    PrctlDef(34, "PR_MCE_KILL_GET"),
    PrctlDef(35, "PR_SET_MM"),
    PrctlDef(36, "PR_SET_CHILD_SUBREAPER"),
    PrctlDef(37, "PR_GET_CHILD_SUBREAPER"),
    PrctlDef(38, "PR_SET_NO_NEW_PRIVS"),
    PrctlDef(39, "PR_GET_NO_NEW_PRIVS"),
    PrctlDef(40, "PR_GET_TID_ADDRESS"),
    PrctlDef(41, "PR_SET_THP_DISABLE"),
    PrctlDef(42, "PR_GET_THP_DISABLE"),
    PrctlDef(43, "PR_MPX_ENABLE_MANAGEMENT"),
    PrctlDef(44, "PR_MPX_DISABLE_MANAGEMENT"),
    PrctlDef(0x59616D61, "PR_SET_PTRACER"),
    PrctlDef(0x53564D41, "PR_SVE_LEGACY_PLACEHOLDER"),
]

BY_CODE: Dict[int, PrctlDef] = {d.code: d for d in PRCTLS}
BY_NAME: Dict[str, PrctlDef] = {d.name: d for d in PRCTLS}

TOTAL_DEFINED = len(PRCTLS)

# Nine operations near 100% importance (§3.3): process naming,
# dumpability, and security-bit queries issued by libc, init systems,
# and every daemon.
UBIQUITOUS_NAMES = (
    "PR_SET_NAME", "PR_GET_NAME", "PR_SET_PDEATHSIG", "PR_GET_DUMPABLE",
    "PR_SET_DUMPABLE", "PR_SET_KEEPCAPS", "PR_GET_KEEPCAPS",
    "PR_SET_SECCOMP", "PR_GET_SECCOMP",
)

# A further nine exceed the 20% threshold the paper reports
# (18 total above 20%).
COMMON_NAMES = UBIQUITOUS_NAMES + (
    "PR_SET_NO_NEW_PRIVS", "PR_GET_NO_NEW_PRIVS", "PR_CAPBSET_READ",
    "PR_CAPBSET_DROP", "PR_SET_CHILD_SUBREAPER", "PR_GET_CHILD_SUBREAPER",
    "PR_SET_TIMERSLACK", "PR_SET_PTRACER", "PR_GET_SECUREBITS",
)
