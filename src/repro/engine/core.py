"""The analysis engine: content-addressed caching + parallel fan-out.

:class:`AnalysisEngine` owns a cache and an executor and turns a batch
of ``(key, name, bytes)`` tasks into :class:`BinaryRecord` results:

1. hash every artifact (SHA-256 content address);
2. look each hash up in the cache — hits skip analysis entirely;
3. fan the misses out over the configured executor backend;
4. store fresh records back and merge everything in task order.

The merge is deterministic: records come back keyed and are assembled
in the submission order, so serial, threaded, and multi-process runs
produce identical results.

Fault tolerance: per-task failures are captured *inside* the workers
(see :class:`repro.engine.executor.FaultPolicy`), classified by the
taxonomy of :mod:`repro.engine.errors`, quarantined out of the result
records, accumulated on :class:`EngineStats` as
:class:`repro.engine.errors.FailureRecord` values, and negative-cached
under the content address so warm runs skip known-bad bytes.  The
quarantine set is identical across backends.  ``strict=True`` disables
capture — the first failure propagates, restoring fail-fast — and
``max_failures`` bounds how much quarantine a run tolerates.
"""

from __future__ import annotations

import functools
import os
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.binary import BinaryAnalysis
from ..analysis.resolver import LibraryIndex
from ..obs import Span, SpanTracer
from .cache import AnalysisCache, MemoryCache
from .errors import (AnalysisFault, FailureRecord, TooManyFailuresError,
                     validate_analysis)
from .executor import Executor, FaultPolicy
from .record import BinaryRecord, content_key
from .stats import (ANALYZE_LATENCY_METRIC, QUARANTINE_LATENCY_METRIC,
                    EngineStats)

#: One unit of engine work: ((package, artifact), display name, bytes).
TaskKey = Tuple[str, str]
Task = Tuple[TaskKey, str, bytes]


@dataclass(frozen=True)
class EngineConfig:
    """How the engine executes and caches per-binary analysis."""

    jobs: int = 1
    backend: str = "serial"
    cache_dir: Optional[str] = None
    strict: bool = False             # fail fast on the first failure
    max_failures: Optional[int] = None  # quarantine budget per batch
    retry_transient: bool = True     # retry tasks once on OSError
    tracing: bool = True             # record spans (metrics always on)

    @classmethod
    def for_jobs(cls, jobs: Optional[int],
                 cache_dir: Optional[str] = None,
                 strict: bool = False,
                 max_failures: Optional[int] = None) -> "EngineConfig":
        """CLI-style shorthand: >1 job selects the process backend."""
        jobs = jobs or 1
        backend = "process" if jobs > 1 else "serial"
        return cls(jobs=jobs, backend=backend, cache_dir=cache_dir,
                   strict=strict, max_failures=max_failures)

    def fault_policy(self) -> FaultPolicy:
        if self.strict:
            return FaultPolicy.strict()
        return FaultPolicy(capture=True,
                           retry_transient=self.retry_transient)


def _worker_analysis(name: str, data: bytes, sha: str, traced: bool,
                     ) -> Tuple[BinaryAnalysis, BinaryRecord,
                                Tuple[Span, ...]]:
    """Shared worker body: analyze one ELF image, optionally traced.

    Every backend runs exactly this sequence under exactly these span
    names, which is what makes the cross-backend span-multiset
    conformance hold.  The spans come from a task-local tracer and are
    shipped back over the ``TaskOutcome`` channel; on failure the
    exception propagates to the executor's fault guard (the task's
    spans die with it — the engine synthesizes a ``quarantine`` span
    instead, identically on every backend).
    """
    if not traced:
        analysis = BinaryAnalysis.from_bytes(data, name=name)
        validate_analysis(analysis)
        return analysis, BinaryRecord.from_analysis(
            analysis, sha256=sha), ()
    tracer = SpanTracer()
    with tracer.span("binary", binary=name, sha256=sha[:12]):
        with tracer.span("decode"):
            analysis = BinaryAnalysis.from_bytes(data, name=name)
        with tracer.span("validate"):
            validate_analysis(analysis)
        with tracer.span("record"):
            record = BinaryRecord.from_analysis(analysis, sha256=sha)
    return analysis, record, tuple(tracer.finished())


def _analyze_task(traced: bool, task,
                  ) -> Tuple[TaskKey, str, BinaryRecord,
                             Tuple[Span, ...]]:
    """Process-pool worker: analyze one ELF image from its bytes."""
    key, name, data, sha = task
    _, record, spans = _worker_analysis(name, data, sha, traced)
    return key, f"pid:{os.getpid()}", record, spans


class AnalysisEngine:
    """Executes per-binary analysis through a cache and a worker pool."""

    def __init__(self, config: Optional[EngineConfig] = None,
                 cache=None) -> None:
        self.config = config or EngineConfig()
        self.executor = Executor(self.config.backend, self.config.jobs)
        if cache is not None:
            self.cache = cache
        elif self.config.cache_dir:
            self.cache = AnalysisCache(self.config.cache_dir)
        else:
            self.cache = MemoryCache()

    def new_stats(self) -> EngineStats:
        return EngineStats(
            backend=self.config.backend, jobs=self.config.jobs,
            tracer=SpanTracer(enabled=self.config.tracing))

    # --- the batch entry point -----------------------------------------

    def analyze(self, tasks: Sequence[Task],
                stats: Optional[EngineStats] = None,
                ) -> Tuple[Dict[TaskKey, BinaryRecord],
                           Dict[TaskKey, BinaryAnalysis]]:
        """Analyze a batch of ELF artifacts.

        Returns ``(records, analyses)``: records for every *analyzable*
        task, plus the full :class:`BinaryAnalysis` objects for tasks
        that ran in-process (serial/thread backends) — callers use those
        to seed lazy indexes so nothing is analyzed twice on the cold
        path.  Tasks whose analysis failed are quarantined: absent from
        ``records``, present as :class:`FailureRecord` entries on
        ``stats.failures``, and negative-cached by content hash.

        With ``strict=True`` the first failure propagates instead; with
        ``max_failures=N`` the run aborts with
        :class:`TooManyFailuresError` once the quarantine exceeds N.
        """
        if stats is None:
            stats = self.new_stats()
        self.cache.metrics = stats.registry
        stats.binaries_total += len(tasks)
        strict = self.config.strict
        traced = self.config.tracing
        policy = self.config.fault_policy()

        with stats.stage("hash"):
            hashed = [(key, name, data, content_key(data))
                      for key, name, data in tasks]

        hits: Dict[TaskKey, BinaryRecord] = {}
        faults: Dict[TaskKey, AnalysisFault] = {}
        misses: List[Tuple[TaskKey, str, bytes, str]] = []
        with stats.stage("cache-lookup"):
            for key, name, data, sha in hashed:
                entry = self.cache.get(sha)
                if isinstance(entry, AnalysisFault):
                    # Negative hit: these bytes are known bad.  Strict
                    # runs re-raise; tolerant runs re-quarantine.
                    if strict:
                        raise entry.to_error()
                    faults[key] = entry
                    stats.negative_cache_hits += 1
                elif entry is not None:
                    hits[key] = entry
                else:
                    misses.append((key, name, data, sha))
        stats.cache_hits += len(hits)
        stats.cache_misses += len(misses)

        analyses: Dict[TaskKey, BinaryAnalysis] = {}
        outcomes = []
        with stats.stage("analyze") as analyze_span:
            if misses:
                outcomes = self.executor.map(
                    self._in_process_worker(analyses, traced)
                    if self.config.backend != "process"
                    else functools.partial(_analyze_task, traced),
                    misses, policy=policy)

        sha_by_key = {key: sha for key, _, _, sha in misses}
        fresh_by_key: Dict[TaskKey, BinaryRecord] = {}
        fault_seconds: Dict[TaskKey, float] = {}
        with stats.stage("cache-store"):
            for (key, _, _, _), outcome in zip(misses, outcomes):
                if outcome.retried:
                    stats.retries += 1
                if outcome.ok:
                    task_key, worker_id, record, spans = outcome.value
                    stats.binaries_analyzed += 1
                    stats.worker_tasks[worker_id] += 1
                    stats.registry.histogram(
                        ANALYZE_LATENCY_METRIC).observe(outcome.seconds)
                    if spans:
                        stats.tracer.adopt(
                            spans, parent_id=analyze_span.span_id)
                    self.cache.put(sha_by_key[task_key], record)
                    stats.cache_stores += 1
                    fresh_by_key[task_key] = record
                else:
                    faults[key] = outcome.fault
                    fault_seconds[key] = outcome.seconds
                    stats.registry.histogram(
                        QUARANTINE_LATENCY_METRIC).observe(
                            outcome.seconds)
                    self.cache.put_fault(sha_by_key[key],
                                         outcome.fault)
                    stats.negative_cache_stores += 1
                    analyses.pop(key, None)

        # Deterministic merge: assemble in original submission order;
        # quarantined tasks are excluded from the records, recorded as
        # failures in the same order, and get one ``quarantine`` span
        # each (fresh faults carry the worker-measured task time;
        # negative-cache hits were skipped, so theirs is zero).
        records: Dict[TaskKey, BinaryRecord] = {}
        for key, _, _, sha in hashed:
            if key in faults:
                stats.binaries_failed += 1
                failure = FailureRecord.for_task(key, sha, faults[key])
                stats.failures.append(failure)
                stats.tracer.record_span(
                    "quarantine",
                    seconds=fault_seconds.get(key, 0.0),
                    error=True, parent_id=analyze_span.span_id,
                    attrs=failure.to_span_attrs())
            elif key in hits:
                records[key] = hits[key]
            else:
                records[key] = fresh_by_key[key]
        budget = self.config.max_failures
        if budget is not None and stats.binaries_failed > budget:
            raise TooManyFailuresError(
                f"{stats.binaries_failed} binaries failed analysis, "
                f"exceeding --max-failures={budget}")
        return records, analyses

    @staticmethod
    def _in_process_worker(
            sink: Dict[TaskKey, BinaryAnalysis],
            traced: bool = True,
    ) -> Callable:
        """Serial/thread worker that also retains the full analysis."""
        def work(task):
            key, name, data, sha = task
            analysis, record, spans = _worker_analysis(
                name, data, sha, traced)
            sink[key] = analysis
            worker = f"tid:{threading.get_ident()}"
            return key, worker, record, spans
        return work


class LazyLibraryIndex(LibraryIndex):
    """A :class:`LibraryIndex` whose analyses materialize on demand.

    Warm-cache and multi-process runs hand the pipeline *records*, not
    :class:`BinaryAnalysis` objects; consumers that genuinely need the
    full analysis (the dynamic tracer, Table 5's runtime attribution)
    trigger a one-off re-analysis of just the libraries they touch.
    """

    def __init__(self) -> None:
        super().__init__()
        self._loaders: Dict[str, Callable[[], BinaryAnalysis]] = {}
        self._order: List[str] = []

    def add_lazy(self, record: BinaryRecord,
                 loader: Callable[[], BinaryAnalysis]) -> None:
        if not record.soname:
            raise ValueError(
                f"{record.name}: shared library lacks SONAME")
        self._loaders[record.soname] = loader
        self._order.append(record.soname)
        for name in record.exported:
            self._export_index.setdefault(name, []).append(
                record.soname)

    def attach(self, soname: str, analysis: BinaryAnalysis) -> None:
        """Seed an already-built analysis (cold in-process runs)."""
        self._by_soname[soname] = analysis

    def get(self, soname: str) -> Optional[BinaryAnalysis]:
        analysis = self._by_soname.get(soname)
        if analysis is None:
            loader = self._loaders.get(soname)
            if loader is not None:
                analysis = loader()
                self._by_soname[soname] = analysis
        return analysis

    def __contains__(self, soname: str) -> bool:
        return soname in self._loaders or soname in self._by_soname

    def sonames(self) -> List[str]:
        return list(self._order)
