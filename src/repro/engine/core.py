"""The analysis engine: content-addressed caching + parallel fan-out.

:class:`AnalysisEngine` owns a cache and an executor and turns a batch
of ``(key, name, bytes)`` tasks into :class:`BinaryRecord` results:

1. hash every artifact (SHA-256 content address);
2. look each hash up in the cache — hits skip analysis entirely;
3. fan the misses out over the configured executor backend;
4. store fresh records back and merge everything in task order.

The merge is deterministic: records come back keyed and are assembled
in the submission order, so serial, threaded, and multi-process runs
produce identical results.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.binary import BinaryAnalysis
from ..analysis.resolver import LibraryIndex
from .cache import AnalysisCache, MemoryCache
from .executor import Executor
from .record import BinaryRecord, analyze_bytes, content_key
from .stats import EngineStats

#: One unit of engine work: ((package, artifact), display name, bytes).
TaskKey = Tuple[str, str]
Task = Tuple[TaskKey, str, bytes]


@dataclass(frozen=True)
class EngineConfig:
    """How the engine executes and caches per-binary analysis."""

    jobs: int = 1
    backend: str = "serial"
    cache_dir: Optional[str] = None

    @classmethod
    def for_jobs(cls, jobs: Optional[int],
                 cache_dir: Optional[str] = None) -> "EngineConfig":
        """CLI-style shorthand: >1 job selects the process backend."""
        jobs = jobs or 1
        backend = "process" if jobs > 1 else "serial"
        return cls(jobs=jobs, backend=backend, cache_dir=cache_dir)


def _analyze_task(task) -> Tuple[TaskKey, str, BinaryRecord]:
    """Process-pool worker: analyze one ELF image from its bytes."""
    key, name, data, sha = task
    record = analyze_bytes(data, name=name, sha256=sha)
    return key, f"pid:{os.getpid()}", record


class AnalysisEngine:
    """Executes per-binary analysis through a cache and a worker pool."""

    def __init__(self, config: Optional[EngineConfig] = None,
                 cache=None) -> None:
        self.config = config or EngineConfig()
        self.executor = Executor(self.config.backend, self.config.jobs)
        if cache is not None:
            self.cache = cache
        elif self.config.cache_dir:
            self.cache = AnalysisCache(self.config.cache_dir)
        else:
            self.cache = MemoryCache()

    def new_stats(self) -> EngineStats:
        return EngineStats(backend=self.config.backend,
                           jobs=self.config.jobs)

    # --- the batch entry point -----------------------------------------

    def analyze(self, tasks: Sequence[Task],
                stats: Optional[EngineStats] = None,
                ) -> Tuple[Dict[TaskKey, BinaryRecord],
                           Dict[TaskKey, BinaryAnalysis]]:
        """Analyze a batch of ELF artifacts.

        Returns ``(records, analyses)``: records for every task, plus
        the full :class:`BinaryAnalysis` objects for tasks that ran
        in-process (serial/thread backends) — callers use those to seed
        lazy indexes so nothing is analyzed twice on the cold path.
        """
        if stats is None:
            stats = self.new_stats()
        stats.binaries_total += len(tasks)

        with stats.stage("hash"):
            hashed = [(key, name, data, content_key(data))
                      for key, name, data in tasks]

        hits: Dict[TaskKey, BinaryRecord] = {}
        misses: List[Tuple[TaskKey, str, bytes, str]] = []
        with stats.stage("cache-lookup"):
            for key, name, data, sha in hashed:
                record = self.cache.get(sha)
                if record is not None:
                    hits[key] = record
                else:
                    misses.append((key, name, data, sha))
        stats.cache_hits += len(hits)
        stats.cache_misses += len(misses)

        analyses: Dict[TaskKey, BinaryAnalysis] = {}
        fresh: List[Tuple[TaskKey, str, BinaryRecord]] = []
        with stats.stage("analyze"):
            if misses:
                fresh = self.executor.map(
                    self._in_process_worker(analyses)
                    if self.config.backend != "process"
                    else _analyze_task,
                    misses)
        stats.binaries_analyzed += len(fresh)
        for _, worker_id, _ in fresh:
            stats.worker_tasks[worker_id] += 1

        sha_by_key = {key: sha for key, _, _, sha in misses}
        with stats.stage("cache-store"):
            fresh_by_key = {}
            for key, _, record in fresh:
                self.cache.put(sha_by_key[key], record)
                stats.cache_stores += 1
                fresh_by_key[key] = record

        # Deterministic merge: assemble in original submission order.
        records: Dict[TaskKey, BinaryRecord] = {}
        for key, _, _, _ in hashed:
            records[key] = (hits[key] if key in hits
                            else fresh_by_key[key])
        return records, analyses

    @staticmethod
    def _in_process_worker(
            sink: Dict[TaskKey, BinaryAnalysis],
    ) -> Callable:
        """Serial/thread worker that also retains the full analysis."""
        def work(task):
            key, name, data, sha = task
            analysis = BinaryAnalysis.from_bytes(data, name=name)
            sink[key] = analysis
            worker = f"tid:{threading.get_ident()}"
            return key, worker, BinaryRecord.from_analysis(
                analysis, sha256=sha)
        return work


class LazyLibraryIndex(LibraryIndex):
    """A :class:`LibraryIndex` whose analyses materialize on demand.

    Warm-cache and multi-process runs hand the pipeline *records*, not
    :class:`BinaryAnalysis` objects; consumers that genuinely need the
    full analysis (the dynamic tracer, Table 5's runtime attribution)
    trigger a one-off re-analysis of just the libraries they touch.
    """

    def __init__(self) -> None:
        super().__init__()
        self._loaders: Dict[str, Callable[[], BinaryAnalysis]] = {}
        self._order: List[str] = []

    def add_lazy(self, record: BinaryRecord,
                 loader: Callable[[], BinaryAnalysis]) -> None:
        if not record.soname:
            raise ValueError(
                f"{record.name}: shared library lacks SONAME")
        self._loaders[record.soname] = loader
        self._order.append(record.soname)
        for name in record.exported:
            self._export_index.setdefault(name, []).append(
                record.soname)

    def attach(self, soname: str, analysis: BinaryAnalysis) -> None:
        """Seed an already-built analysis (cold in-process runs)."""
        self._by_soname[soname] = analysis

    def get(self, soname: str) -> Optional[BinaryAnalysis]:
        analysis = self._by_soname.get(soname)
        if analysis is None:
            loader = self._loaders.get(soname)
            if loader is not None:
                analysis = loader()
                self._by_soname[soname] = analysis
        return analysis

    def __contains__(self, soname: str) -> bool:
        return soname in self._loaders or soname in self._by_soname

    def sonames(self) -> List[str]:
        return list(self._order)
