"""Per-binary analysis records.

A :class:`BinaryRecord` is the *portable* result of analyzing one ELF
image: everything the cross-binary resolution, metrics, and database
stages consume, without the call graph, the decoded instructions, or
the raw bytes.  Records are plain frozen data, so they can be

* returned from worker processes (picklable),
* persisted to the content-addressed cache (JSON via
  :mod:`repro.engine.codec`), and
* substituted for a :class:`repro.analysis.binary.BinaryAnalysis`
  inside :class:`repro.analysis.resolver.FootprintResolver` — the
  record implements the same ``entry_root`` / ``export_root`` /
  ``effects_from`` protocol with opaque root tokens.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from ..analysis.binary import BinaryAnalysis, RootEffects
from .errors import validate_analysis

#: Opaque root token standing in for the entry point of a record.
ENTRY_ROOT = "__entry__"


def content_key(data: bytes) -> str:
    """Content address of an ELF image (hex SHA-256 of its bytes)."""
    return hashlib.sha256(data).hexdigest()


@dataclass
class BinaryRecord:
    """Everything downstream stages need from one analyzed binary."""

    name: str
    sha256: str
    soname: Optional[str]
    needed: Tuple[str, ...]
    imported: FrozenSet[str]
    exported: FrozenSet[str]
    pseudo_files: FrozenSet[str]
    is_shared_library: bool
    interpreter: Optional[str]
    direct_syscalls: FrozenSet[str]
    entry_effects: Optional[RootEffects] = None
    export_effects: Dict[str, RootEffects] = field(default_factory=dict)

    # --- FootprintResolver protocol (mirrors BinaryAnalysis) -----------

    def entry_root(self) -> Optional[str]:
        return ENTRY_ROOT if self.entry_effects is not None else None

    def export_root(self, name: str) -> Optional[str]:
        return name if name in self.export_effects else None

    def effects_from(self, root: str) -> RootEffects:
        if root == ENTRY_ROOT and self.entry_effects is not None:
            return self.entry_effects
        return self.export_effects[root]

    def all_direct_syscalls(self) -> FrozenSet[str]:
        return self.direct_syscalls

    # --- construction ---------------------------------------------------

    @classmethod
    def from_analysis(cls, analysis: BinaryAnalysis,
                      sha256: str = "") -> "BinaryRecord":
        """Flatten a full analysis into a portable record.

        Effects are computed eagerly for the entry point and every
        analyzable export — the same roots the pipeline's resolution
        stage would walk lazily — so a cached record can fully replace
        re-disassembly on warm runs.
        """
        entry = analysis.entry_root()
        entry_effects = (analysis.effects_from(entry)
                         if entry is not None else None)
        export_effects: Dict[str, RootEffects] = {}
        for export in sorted(analysis.exported):
            root = analysis.export_root(export)
            if root is None:
                continue
            export_effects[export] = analysis.effects_from(root)
        return cls(
            name=analysis.name,
            sha256=sha256,
            soname=analysis.soname,
            needed=tuple(analysis.needed),
            imported=frozenset(analysis.imported),
            exported=frozenset(analysis.exported),
            pseudo_files=frozenset(analysis.pseudo_files),
            is_shared_library=analysis.is_shared_library,
            interpreter=analysis.elf.interpreter(),
            direct_syscalls=analysis.all_direct_syscalls(),
            entry_effects=entry_effects,
            export_effects=export_effects,
        )


def analyze_bytes(data: bytes, name: str = "",
                  sha256: str = "") -> BinaryRecord:
    """Analyze one ELF image from bytes into a record (worker entry).

    Raises the taxonomy errors of :mod:`repro.engine.errors`:
    :class:`repro.elf.structs.ElfFormatError` for malformed images and
    :class:`repro.engine.errors.DecodeAnalysisError` for images that
    parse but carry unanalyzable code.
    """
    analysis = BinaryAnalysis.from_bytes(data, name=name)
    validate_analysis(analysis)
    return BinaryRecord.from_analysis(
        analysis, sha256=sha256 or content_key(data))
