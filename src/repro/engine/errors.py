"""Error taxonomy and failure records for per-binary analysis.

The paper's pipeline ran over 66,275 real-world binaries, a corpus
that inevitably contains truncated, malformed, and adversarially weird
images.  Robust bulk analysis therefore treats a per-binary failure as
*data*, not as a reason to abort the run: each failure is classified
into a small taxonomy, captured as a structured :class:`FailureRecord`,
quarantined out of the footprints, and negative-cached so warm runs
skip known-bad bytes.

Taxonomy (``error_class``):

* ``format``     — the image is not a well-formed ELF64 file
  (:class:`repro.elf.structs.ElfFormatError`);
* ``decode``     — the image parses but its code is not analyzable
  (entry point outside ``.text``, unrecognized-instruction density);
* ``resolution`` — cross-binary resolution failed (missing package,
  broken library index);
* ``timeout``    — analysis exceeded a time budget;
* ``internal``   — everything else (our bug, OS trouble, ...).

Two shapes carry failures around:

* :class:`AnalysisFault` — the *content-level* description (class,
  original exception type, message, stage).  It is what crosses
  process boundaries and what the negative cache stores, keyed by the
  SHA-256 of the bytes: the same bytes fail the same way regardless of
  which package ships them.
* :class:`FailureRecord` — one fault attributed to one task
  (package, artifact, sha256).  This is what :class:`EngineStats`
  accumulates and what ``repro-analyze report failures`` prints.
"""

from __future__ import annotations

import struct as _struct
from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

from ..elf.structs import ElfFormatError
from ..store.errors import StoreError
from ..x86.instructions import InsnKind

if TYPE_CHECKING:
    from ..analysis.binary import BinaryAnalysis

#: Valid ``error_class`` values, in severity-agnostic display order.
ERROR_CLASSES = ("format", "decode", "resolution", "timeout",
                 "internal")


class AnalysisError(Exception):
    """Base of the per-binary analysis error taxonomy."""

    #: The taxonomy bucket this exception type belongs to.
    error_class = "internal"

    def __init__(self, message: str, stage: str = "analyze") -> None:
        super().__init__(message)
        self.stage = stage


class FormatAnalysisError(AnalysisError):
    """The bytes are not a well-formed ELF64 image."""

    error_class = "format"


class DecodeAnalysisError(AnalysisError):
    """The image parses but its code cannot be meaningfully decoded."""

    error_class = "decode"


class ResolutionAnalysisError(AnalysisError):
    """Cross-binary resolution failed for this binary."""

    error_class = "resolution"


class TimeoutAnalysisError(AnalysisError):
    """Per-binary analysis exceeded its time budget."""

    error_class = "timeout"


class InternalAnalysisError(AnalysisError):
    """Unexpected failure inside the analysis itself."""

    error_class = "internal"


class TooManyFailuresError(AnalysisError):
    """The run crossed the configured ``max_failures`` budget."""

    error_class = "internal"


_CLASS_TO_ERROR = {
    "format": FormatAnalysisError,
    "decode": DecodeAnalysisError,
    "resolution": ResolutionAnalysisError,
    "timeout": TimeoutAnalysisError,
    "internal": InternalAnalysisError,
}


@dataclass(frozen=True)
class AnalysisFault:
    """Content-level failure description (picklable, JSON-codable)."""

    error_class: str          # one of ERROR_CLASSES
    exc_type: str             # original exception type name
    message: str
    stage: str                # "parse" | "analyze" | "resolve" | ...
    retried: bool = False     # a transient retry was attempted first

    def to_error(self) -> AnalysisError:
        """Rebuild a raisable taxonomy exception (strict mode)."""
        error_type = _CLASS_TO_ERROR.get(self.error_class,
                                         InternalAnalysisError)
        return error_type(f"{self.exc_type}: {self.message}",
                          stage=self.stage)


@dataclass(frozen=True)
class FailureRecord:
    """One per-task failure: an :class:`AnalysisFault` with an address."""

    package: str
    artifact: str
    sha256: str
    error_class: str
    exc_type: str
    message: str
    stage: str

    @classmethod
    def for_task(cls, key: Tuple[str, str], sha256: str,
                 fault: AnalysisFault) -> "FailureRecord":
        package, artifact = key
        return cls(package=package, artifact=artifact, sha256=sha256,
                   error_class=fault.error_class,
                   exc_type=fault.exc_type, message=fault.message,
                   stage=fault.stage)

    @property
    def fault(self) -> AnalysisFault:
        return AnalysisFault(error_class=self.error_class,
                             exc_type=self.exc_type,
                             message=self.message, stage=self.stage)

    def to_span_attrs(self) -> dict:
        """Attribute dict for this failure's ``quarantine`` span."""
        return {"package": self.package, "artifact": self.artifact,
                "error_class": self.error_class,
                "exc_type": self.exc_type, "stage": self.stage}


def classify_exception(error: BaseException, stage: str = "analyze",
                       retried: bool = False) -> AnalysisFault:
    """Map an arbitrary exception onto the taxonomy."""
    if isinstance(error, AnalysisError):
        error_class = error.error_class
        stage = error.stage
    elif isinstance(error, ElfFormatError):
        error_class, stage = "format", "parse"
    elif isinstance(error, StoreError):
        # A snapshot that fails its integrity ladder is malformed
        # input, exactly like a malformed ELF image.
        error_class, stage = "format", error.stage
    elif isinstance(error, (_struct.error, UnicodeDecodeError)):
        error_class = "decode"
    elif isinstance(error, TimeoutError):
        error_class = "timeout"
    elif stage == "resolve":
        error_class = "resolution"
    else:
        error_class = "internal"
    return AnalysisFault(
        error_class=error_class,
        exc_type=type(error).__name__,
        message=str(error) or type(error).__name__,
        stage=stage, retried=retried)


# --- decode-stage validation -------------------------------------------

#: An image whose root-reachable code is at least this fraction
#: unrecognized instructions (with at least _MIN_UNKNOWN of them) is
#: treated as garbage.  Legitimate code in the studied subset decodes
#: with essentially zero unknowns; random bytes decode mostly to
#: :data:`InsnKind.OTHER`.
_UNKNOWN_FRACTION = 0.2
_MIN_UNKNOWN = 2


def validate_analysis(analysis: "BinaryAnalysis") -> None:
    """Reject images that parse but are not meaningfully analyzable.

    Raises :class:`DecodeAnalysisError` when

    * the header claims an entry point but no ``_start`` root could be
      anchored inside ``.text`` (lying ``e_entry``), or
    * the instruction stream reachable from the discovered roots is
      dominated by unrecognized encodings (garbage code bytes).
    """
    header = analysis.elf.header
    if header.is_executable and analysis.entry_root() is None:
        raise DecodeAnalysisError(
            f"entry point {header.e_entry:#x} is outside .text",
            stage="decode")
    total = 0
    unknown = 0
    for root in analysis.graph.entry_points.values():
        for insn in analysis.graph.reachable_instructions(root):
            total += 1
            if insn.kind == InsnKind.OTHER:
                unknown += 1
    if (unknown >= _MIN_UNKNOWN and total > 0
            and unknown / total >= _UNKNOWN_FRACTION):
        raise DecodeAnalysisError(
            f"unrecognized instruction density {unknown}/{total} "
            f"from {len(analysis.graph.entry_points)} roots",
            stage="decode")
