"""Content-addressed cache of per-binary analysis records.

The cache key is the SHA-256 of the ELF bytes; the analysis version
(:data:`repro.engine.codec.ANALYSIS_VERSION`) is part of the on-disk
address, so records produced by an incompatible analysis are never
read back.  Layout::

    <cache_dir>/v<ANALYSIS_VERSION>/<sha[:2]>/<sha>.json

Two implementations share the interface: :class:`AnalysisCache`
persists to disk (warm runs survive the process), and
:class:`MemoryCache` keeps records in-process (used as the default so
repeated pipeline runs inside one study — e.g. Table 12's database
mirror — skip re-analysis).
"""

from __future__ import annotations

import os
import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Optional

from .codec import ANALYSIS_VERSION, CodecError, record_from_json, \
    record_to_json
from .record import BinaryRecord


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0          # unreadable / version-mismatched entries

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class MemoryCache:
    """In-process record cache (no persistence)."""

    def __init__(self) -> None:
        self._records: Dict[str, BinaryRecord] = {}
        self.stats = CacheStats()

    def get(self, sha256: str) -> Optional[BinaryRecord]:
        record = self._records.get(sha256)
        if record is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return record

    def put(self, sha256: str, record: BinaryRecord) -> None:
        self._records[sha256] = record
        self.stats.stores += 1

    def clear(self) -> int:
        count = len(self._records)
        self._records.clear()
        return count

    def entry_count(self) -> int:
        return len(self._records)

    def size_bytes(self) -> int:
        return 0


class AnalysisCache:
    """Disk-backed content-addressed record cache."""

    def __init__(self, cache_dir: str) -> None:
        self.root = pathlib.Path(cache_dir)
        self.version_dir = self.root / f"v{ANALYSIS_VERSION}"
        self.stats = CacheStats()

    # --- addressing ----------------------------------------------------

    def _path(self, sha256: str) -> pathlib.Path:
        return self.version_dir / sha256[:2] / f"{sha256}.json"

    # --- record interface ----------------------------------------------

    def get(self, sha256: str) -> Optional[BinaryRecord]:
        path = self._path(sha256)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.stats.misses += 1
            return None
        try:
            record = record_from_json(text)
        except CodecError:
            # Corrupt or stale entry: treat as a miss and drop it so
            # the slot is rewritten with a fresh record.
            self.stats.invalid += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return record

    def put(self, sha256: str, record: BinaryRecord) -> None:
        path = self._path(sha256)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic publish: a crashed writer must never leave a torn
        # entry that later reads as corrupt.
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(record_to_json(record))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    # --- maintenance ----------------------------------------------------

    def _entries(self):
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("v*/??/*.json")):
            yield path

    def entry_count(self) -> int:
        return sum(1 for _ in self._entries())

    def size_bytes(self) -> int:
        total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def clear(self) -> int:
        """Delete every cached record (all versions); return count."""
        removed = 0
        for path in list(self._entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
