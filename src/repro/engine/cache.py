"""Content-addressed cache of per-binary analysis records.

The cache key is the SHA-256 of the ELF bytes; the analysis version
(:data:`repro.engine.codec.ANALYSIS_VERSION`) is part of the on-disk
address, so records produced by an incompatible analysis are never
read back.  Layout::

    <cache_dir>/v<ANALYSIS_VERSION>/<sha[:2]>/<sha>.json

Two implementations share the interface: :class:`AnalysisCache`
persists to disk (warm runs survive the process), and
:class:`MemoryCache` keeps records in-process (used as the default so
repeated pipeline runs inside one study — e.g. Table 12's database
mirror — skip re-analysis).

Besides successful :class:`BinaryRecord` entries, the cache holds
*negative* entries: an :class:`repro.engine.errors.AnalysisFault`
stored under the content hash of bytes whose analysis failed.  A warm
run over known-bad bytes skips re-analysis the same way it skips
re-analysis of known-good bytes — ``get`` simply returns the fault and
the engine re-quarantines.  Bumping ``ANALYSIS_VERSION`` invalidates
negative entries along with everything else, so a fixed analyzer gets
a fresh chance at previously failing inputs.

A third entry kind lives beside the per-binary records: interned
:class:`repro.dataset.Dataset` snapshots, addressed by the footprint
mapping's content fingerprint under ::

    <cache_dir>/v<ANALYSIS_VERSION>/datasets/<fp[:2]>/<fp>.rsnap

A warm study run that replays the same corpus mmaps the snapshot and
materializes masks lazily (:mod:`repro.store`) instead of re-interning
every footprint.  Snapshots written by older releases in the JSON
codec format (``<fp>.json``) still load — the binary path is probed
first, then the legacy path.  Either way a version-mismatched or torn
snapshot reads as a miss and is dropped
(:class:`repro.store.StoreError` subclasses
:class:`repro.dataset.codec.DatasetCodecError`, so one handler covers
both formats).
"""

from __future__ import annotations

import os
import pathlib
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from ..dataset.codec import DatasetCodecError, dataset_from_json
from ..dataset.core import Dataset
from ..obs import MetricsRegistry
from ..packages.popcon import PopularityContest
from ..packages.repository import Repository
from ..store import load_snapshot, write_snapshot

from .codec import ANALYSIS_VERSION, CodecError, entry_from_json, \
    entry_to_json
from .errors import AnalysisFault
from .record import BinaryRecord

#: What a cache lookup can return: a record, a negative entry, or None.
CacheEntry = Union[BinaryRecord, AnalysisFault]


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0          # unreadable / version-mismatched entries
    negative_hits: int = 0    # lookups answered by a quarantined fault
    negative_stores: int = 0  # faults written (negative caching)
    dataset_hits: int = 0     # interned-dataset snapshots served
    dataset_misses: int = 0   # snapshot lookups that re-intern
    dataset_stores: int = 0   # snapshots written

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class MemoryCache:
    """In-process record cache (no persistence)."""

    def __init__(self) -> None:
        self._records: Dict[str, CacheEntry] = {}
        self._datasets: Dict[str, Dataset] = {}
        self.stats = CacheStats()
        # Engine hook; lookups are dict reads, nothing worth timing.
        self.metrics: Optional[MetricsRegistry] = None

    def get(self, sha256: str) -> Optional[CacheEntry]:
        entry = self._records.get(sha256)
        if entry is None:
            self.stats.misses += 1
            return None
        if isinstance(entry, AnalysisFault):
            self.stats.negative_hits += 1
        else:
            self.stats.hits += 1
        return entry

    def put(self, sha256: str, record: BinaryRecord) -> None:
        self._records[sha256] = record
        self.stats.stores += 1

    def put_fault(self, sha256: str, fault: AnalysisFault) -> None:
        """Negative-cache: these bytes are known to fail analysis."""
        self._records[sha256] = fault
        self.stats.negative_stores += 1

    # --- interned-dataset snapshots --------------------------------------

    def get_dataset(self, fingerprint: str,
                    popcon: Optional[PopularityContest] = None,
                    repository: Optional[Repository] = None,
                    ) -> Optional[Dataset]:
        dataset = self._datasets.get(fingerprint)
        if dataset is None:
            self.stats.dataset_misses += 1
            return None
        self.stats.dataset_hits += 1
        bind_popcon = dataset.popcon if popcon is None else popcon
        bind_repo = (dataset.repository if repository is None
                     else repository)
        if (bind_popcon is dataset.popcon
                and bind_repo is dataset.repository):
            return dataset
        return dataset.rebound(bind_popcon, bind_repo)

    def put_dataset(self, fingerprint: str, dataset: Dataset) -> None:
        self._datasets[fingerprint] = dataset
        self.stats.dataset_stores += 1

    def clear(self) -> int:
        count = len(self._records) + len(self._datasets)
        self._records.clear()
        self._datasets.clear()
        return count

    def entry_count(self) -> int:
        return len(self._records) + len(self._datasets)

    def size_bytes(self) -> int:
        return 0


class AnalysisCache:
    """Disk-backed content-addressed record cache."""

    def __init__(self, cache_dir: str) -> None:
        self.root = pathlib.Path(cache_dir)
        self.version_dir = self.root / f"v{ANALYSIS_VERSION}"
        self.stats = CacheStats()
        # Set by the engine per run; disk read/write latency lands in
        # the run's ``engine.cache.{get,put}_seconds`` histograms.
        self.metrics: Optional[MetricsRegistry] = None

    # --- addressing ----------------------------------------------------

    def _path(self, sha256: str) -> pathlib.Path:
        return self.version_dir / sha256[:2] / f"{sha256}.json"

    def _dataset_path(self, fingerprint: str) -> pathlib.Path:
        """The primary (binary ``.rsnap``) snapshot address."""
        return (self.version_dir / "datasets" / fingerprint[:2]
                / f"{fingerprint}.rsnap")

    def _json_dataset_path(self, fingerprint: str) -> pathlib.Path:
        """Legacy JSON snapshot address (read fallback only)."""
        return (self.version_dir / "datasets" / fingerprint[:2]
                / f"{fingerprint}.json")

    def _observe(self, metric: str, seconds: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram(metric).observe(seconds)

    # --- record interface ----------------------------------------------

    def get(self, sha256: str) -> Optional[CacheEntry]:
        start = time.perf_counter()
        try:
            return self._get(sha256)
        finally:
            self._observe("engine.cache.get_seconds",
                          time.perf_counter() - start)

    def _get(self, sha256: str) -> Optional[CacheEntry]:
        path = self._path(sha256)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.stats.misses += 1
            return None
        try:
            entry = entry_from_json(text)
        except CodecError:
            # Corrupt or stale entry: treat as a miss and drop it so
            # the slot is rewritten with a fresh record.
            self.stats.invalid += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if isinstance(entry, AnalysisFault):
            self.stats.negative_hits += 1
        else:
            self.stats.hits += 1
        return entry

    def put(self, sha256: str, record: BinaryRecord) -> None:
        self._write(sha256, record)
        self.stats.stores += 1

    def put_fault(self, sha256: str, fault: AnalysisFault) -> None:
        """Negative-cache: these bytes are known to fail analysis."""
        self._write(sha256, fault)
        self.stats.negative_stores += 1

    def _write(self, sha256: str, entry: CacheEntry) -> None:
        start = time.perf_counter()
        try:
            self._write_entry(sha256, entry)
        finally:
            self._observe("engine.cache.put_seconds",
                          time.perf_counter() - start)

    def _write_entry(self, sha256: str, entry: CacheEntry) -> None:
        self._atomic_write(self._path(sha256), entry_to_json(entry))

    @staticmethod
    def _atomic_write(path: pathlib.Path, text: str) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic publish: a crashed writer must never leave a torn
        # entry that later reads as corrupt.
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # --- interned-dataset snapshots --------------------------------------

    def get_dataset(self, fingerprint: str,
                    popcon: Optional[PopularityContest] = None,
                    repository: Optional[Repository] = None,
                    ) -> Optional[Dataset]:
        """Load an interned dataset snapshot, or None on a miss.

        ``popcon`` / ``repository`` are rebound onto the loaded
        dataset — weights and dependency graphs are derived live, so
        only the interner and bitsets need persisting.
        """
        start = time.perf_counter()
        try:
            return self._get_dataset(fingerprint, popcon, repository)
        finally:
            self._observe("engine.cache.get_dataset_seconds",
                          time.perf_counter() - start)

    def _get_dataset(self, fingerprint: str,
                     popcon: Optional[PopularityContest],
                     repository: Optional[Repository],
                     ) -> Optional[Dataset]:
        path = self._dataset_path(fingerprint)
        if path.exists():
            try:
                dataset = load_snapshot(path, popcon, repository)
            except DatasetCodecError:
                # StoreError subclasses DatasetCodecError: any failed
                # integrity check — torn write, bit rot, stale format
                # version — reads as a miss and drops the entry.
                self.stats.invalid += 1
                self.stats.dataset_misses += 1
                try:
                    path.unlink()
                except OSError:
                    pass
                return None
            except OSError:
                self.stats.dataset_misses += 1
                return None
            self.stats.dataset_hits += 1
            return dataset
        return self._get_legacy_dataset(fingerprint, popcon,
                                        repository)

    def _get_legacy_dataset(self, fingerprint: str,
                            popcon: Optional[PopularityContest],
                            repository: Optional[Repository],
                            ) -> Optional[Dataset]:
        """Fallback read of a pre-``.rsnap`` JSON snapshot."""
        path = self._json_dataset_path(fingerprint)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.stats.dataset_misses += 1
            return None
        try:
            dataset = dataset_from_json(text, popcon, repository)
        except DatasetCodecError:
            self.stats.invalid += 1
            self.stats.dataset_misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.dataset_hits += 1
        return dataset

    def put_dataset(self, fingerprint: str, dataset: Dataset) -> None:
        start = time.perf_counter()
        try:
            # write_snapshot publishes atomically (mkstemp + replace),
            # same torn-write guarantee as _atomic_write.
            write_snapshot(self._dataset_path(fingerprint), dataset,
                           fingerprint)
        finally:
            self._observe("engine.cache.put_dataset_seconds",
                          time.perf_counter() - start)
        self.stats.dataset_stores += 1

    # --- maintenance ----------------------------------------------------

    def _entries(self):
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("v*/??/*.json")):
            yield path
        for path in sorted(self.root.glob("v*/datasets/??/*.json")):
            yield path
        for path in sorted(self.root.glob("v*/datasets/??/*.rsnap")):
            yield path

    def entry_count(self) -> int:
        return sum(1 for _ in self._entries())

    def size_bytes(self) -> int:
        total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def clear(self) -> int:
        """Delete every cached record (all versions); return count."""
        removed = 0
        for path in list(self._entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
