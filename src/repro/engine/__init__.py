"""Execution substrate for the study: parallel, content-addressed,
incremental per-binary analysis.

Layers:

* :mod:`repro.engine.errors` — the per-binary failure taxonomy,
  fault/failure records, and decode validation;
* :mod:`repro.engine.record` — portable per-binary analysis records;
* :mod:`repro.engine.codec` — stable, versioned JSON round-trip;
* :mod:`repro.engine.cache` — content-addressed record cache (disk or
  in-memory);
* :mod:`repro.engine.executor` — serial / thread / process fan-out
  with deterministic merging;
* :mod:`repro.engine.core` — the engine tying cache + executor
  together, plus the lazy library index;
* :mod:`repro.engine.incremental` — snapshot diffing and the
  incremental re-analysis driver;
* :mod:`repro.engine.stats` — per-stage wall time, cache counters,
  throughput instrumentation; a thin view over the run's
  :mod:`repro.obs` span tracer and metrics registry.
"""

from .cache import AnalysisCache, CacheStats, MemoryCache
from .codec import (
    ANALYSIS_VERSION,
    CODEC_VERSION,
    CodecError,
    footprint_from_dict,
    footprint_from_json,
    footprint_to_dict,
    footprint_to_json,
    record_from_dict,
    record_from_json,
    record_to_dict,
    record_to_json,
)
from .core import AnalysisEngine, EngineConfig, LazyLibraryIndex
from .errors import (
    ERROR_CLASSES,
    AnalysisError,
    AnalysisFault,
    DecodeAnalysisError,
    FailureRecord,
    FormatAnalysisError,
    InternalAnalysisError,
    ResolutionAnalysisError,
    TimeoutAnalysisError,
    TooManyFailuresError,
    classify_exception,
    validate_analysis,
)
from .executor import BACKENDS, Executor, FaultPolicy, TaskOutcome
from .incremental import (
    IncrementalDriver,
    IncrementalRun,
    RepositoryDiff,
    diff_manifests,
    diff_repositories,
    repository_manifest,
)
from .record import BinaryRecord, analyze_bytes, content_key
from .stats import EngineStats

__all__ = [
    "ANALYSIS_VERSION",
    "AnalysisCache",
    "AnalysisEngine",
    "AnalysisError",
    "AnalysisFault",
    "BACKENDS",
    "BinaryRecord",
    "CODEC_VERSION",
    "CacheStats",
    "CodecError",
    "DecodeAnalysisError",
    "ERROR_CLASSES",
    "EngineConfig",
    "EngineStats",
    "Executor",
    "FailureRecord",
    "FaultPolicy",
    "FormatAnalysisError",
    "InternalAnalysisError",
    "ResolutionAnalysisError",
    "TaskOutcome",
    "TimeoutAnalysisError",
    "TooManyFailuresError",
    "IncrementalDriver",
    "IncrementalRun",
    "LazyLibraryIndex",
    "MemoryCache",
    "RepositoryDiff",
    "analyze_bytes",
    "classify_exception",
    "content_key",
    "diff_manifests",
    "diff_repositories",
    "footprint_from_dict",
    "footprint_from_json",
    "footprint_to_dict",
    "footprint_to_json",
    "record_from_dict",
    "record_from_json",
    "record_to_dict",
    "record_to_json",
    "repository_manifest",
    "validate_analysis",
]
