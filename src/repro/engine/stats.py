"""Engine instrumentation: a thin view over :mod:`repro.obs`.

One :class:`EngineStats` is attached to each pipeline run (see
:attr:`repro.analysis.pipeline.AnalysisResult.engine_stats`).  It owns
the run's :class:`repro.obs.SpanTracer` and
:class:`repro.obs.MetricsRegistry`; the familiar counter attributes
(``cache_hits``, ``binaries_analyzed``, ...) are properties backed by
registry counters, and ``stage_seconds`` is a view over the
``engine.stage.*.seconds`` gauges — so everything the stats report
also flows out through ``--trace-out`` / ``--metrics-out`` without a
second bookkeeping path.

Thread safety: :meth:`EngineStats.stage` accumulates elapsed time via
an atomic :meth:`repro.obs.Gauge.add` (the old dict read-modify-write
lost updates under the thread backend).  The counter *properties*
remain driver-thread-only: ``stats.cache_hits += n`` is a read/write
pair with no cross-call atomicity — workers never touch them; they
report through the executor's outcome channel instead.
"""

from __future__ import annotations

import time
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..obs import MetricsRegistry, Span, SpanTracer
from ..reports.text import format_percent, render_key_points
from .errors import FailureRecord

#: Histogram of per-task wall time for successfully analyzed binaries.
ANALYZE_LATENCY_METRIC = "engine.analyze.task_seconds"
#: Histogram of per-task wall time for quarantined binaries.
QUARANTINE_LATENCY_METRIC = "engine.quarantine.task_seconds"

_STAGE_PREFIX = "engine.stage."
_STAGE_SUFFIX = ".seconds"

#: Attribute name -> backing counter metric.  These are the values the
#: cross-backend conformance suite asserts are identical.
COUNTER_METRICS = {
    "binaries_total": "engine.binaries.submitted",
    "binaries_analyzed": "engine.binaries.analyzed",
    "binaries_failed": "engine.binaries.quarantined",
    "cache_hits": "engine.cache.hits",
    "cache_misses": "engine.cache.misses",
    "cache_stores": "engine.cache.stores",
    "negative_cache_hits": "engine.cache.negative_hits",
    "negative_cache_stores": "engine.cache.negative_stores",
    "retries": "engine.retries",
}


@dataclass
class EngineStats:
    """Instrumentation for one engine-driven pipeline run."""

    backend: str = "serial"
    jobs: int = 1
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: SpanTracer = field(default_factory=SpanTracer)
    worker_tasks: Counter = field(default_factory=Counter)
    failures: List[FailureRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Materialize the whole counter set up front: exports and the
        # conformance fingerprint must not depend on which attributes
        # happened to be read or written during the run.
        for metric in COUNTER_METRICS.values():
            self.registry.counter(metric)

    @contextmanager
    def stage(self, name: str) -> Iterator[Span]:
        """Time a pipeline stage: one ``stage:<name>`` span plus an
        atomic accumulate into the ``engine.stage.<name>.seconds``
        gauge.  Yields the span so callers can parent worker spans
        under it."""
        start = time.perf_counter()
        try:
            with self.tracer.span(f"stage:{name}") as span:
                yield span
        finally:
            self.registry.gauge(
                f"{_STAGE_PREFIX}{name}{_STAGE_SUFFIX}").add(
                    time.perf_counter() - start)

    @property
    def stage_seconds(self) -> Dict[str, float]:
        """Per-stage wall time, in execution (gauge-creation) order."""
        return {
            name[len(_STAGE_PREFIX):-len(_STAGE_SUFFIX)]: value
            for name, value in self.registry.gauge_values().items()
            if name.startswith(_STAGE_PREFIX)
            and name.endswith(_STAGE_SUFFIX)
        }

    # --- derived -------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    @property
    def analyze_seconds(self) -> float:
        return self.stage_seconds.get("analyze", 0.0)

    @property
    def hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def binaries_per_second(self) -> float:
        if self.analyze_seconds <= 0.0:
            return 0.0
        return self.binaries_analyzed / self.analyze_seconds

    @property
    def failures_by_class(self) -> Dict[str, int]:
        """Quarantine census: ``error_class`` -> count."""
        census: Counter = Counter(
            record.error_class for record in self.failures)
        return dict(sorted(census.items()))

    @property
    def workers_used(self) -> int:
        return len(self.worker_tasks)

    @property
    def worker_utilization(self) -> float:
        """Evenness of the task spread: 1.0 = perfectly balanced."""
        if not self.worker_tasks or self.jobs <= 0:
            return 0.0
        busiest = max(self.worker_tasks.values())
        if busiest == 0:
            return 0.0
        total = sum(self.worker_tasks.values())
        return total / (busiest * self.jobs)

    def analyze_latency(self) -> Optional[Dict[str, float]]:
        """p50/p90/p99 snapshot of per-binary analyze wall time."""
        snapshot = self.registry.histogram_values().get(
            ANALYZE_LATENCY_METRIC)
        if not snapshot or not snapshot["count"]:
            return None
        return snapshot

    # --- rendering -----------------------------------------------------

    def render(self) -> str:
        points = [
            ("backend", f"{self.backend} x{self.jobs}"),
        ]
        for name, seconds in self.stage_seconds.items():
            points.append((f"stage {name}", f"{seconds * 1000:.1f} ms"))
        points += [
            ("binaries submitted", self.binaries_total),
            ("binaries analyzed", self.binaries_analyzed),
            ("cache", f"{self.cache_hits} hits / "
                      f"{self.cache_misses} misses "
                      f"({format_percent(self.hit_rate)} hit rate)"),
            ("cache stores", self.cache_stores),
            ("throughput",
             f"{self.binaries_per_second:.1f} binaries/s"),
            ("quarantined",
             f"{self.binaries_failed} binaries"
             + (" (" + ", ".join(
                    f"{cls}: {count}" for cls, count
                    in self.failures_by_class.items()) + ")"
                if self.failures_by_class else "")
             + (f", {self.negative_cache_hits} skipped via "
                f"negative cache"
                if self.negative_cache_hits else "")),
            ("workers used", f"{self.workers_used} of {self.jobs} "
                             f"(utilization "
                             f"{format_percent(self.worker_utilization)})"),
        ]
        latency = self.analyze_latency()
        if latency is not None:
            points.append(
                ("per-binary latency",
                 f"p50 {latency['p50'] * 1000:.2f} ms / "
                 f"p90 {latency['p90'] * 1000:.2f} ms / "
                 f"p99 {latency['p99'] * 1000:.2f} ms"))
        spans = len(self.tracer.finished())
        if spans:
            points.append(("spans recorded", spans))
        return render_key_points(points, title="engine run statistics")


def _counter_property(metric: str) -> property:
    def _get(self: EngineStats) -> int:
        return int(self.registry.counter(metric).value)

    def _set(self: EngineStats, value: int) -> None:
        self.registry.counter(metric).set(value)

    return property(_get, _set, doc=f"View over counter {metric!r}.")


for _attribute, _metric in COUNTER_METRICS.items():
    setattr(EngineStats, _attribute, _counter_property(_metric))
del _attribute, _metric
