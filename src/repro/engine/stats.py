"""Engine instrumentation: stage timings, cache counters, throughput.

One :class:`EngineStats` is attached to each pipeline run (see
:attr:`repro.analysis.pipeline.AnalysisResult.engine_stats`); its
:meth:`EngineStats.render` produces a paper-style key-point block via
:mod:`repro.reports.text`.
"""

from __future__ import annotations

import time
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List

from ..reports.text import format_percent, render_key_points
from .errors import FailureRecord


@dataclass
class EngineStats:
    """Instrumentation for one engine-driven pipeline run."""

    backend: str = "serial"
    jobs: int = 1
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    binaries_total: int = 0          # ELF artifacts submitted
    binaries_analyzed: int = 0       # actually (re-)analyzed (misses)
    binaries_failed: int = 0         # quarantined (fault captured)
    negative_cache_hits: int = 0     # known-bad bytes skipped warm
    negative_cache_stores: int = 0   # fresh faults negative-cached
    retries: int = 0                 # transient-OSError retries
    worker_tasks: Counter = field(default_factory=Counter)
    failures: List[FailureRecord] = field(default_factory=list)

    @contextmanager
    def stage(self, name: str):
        """Accumulate wall time under ``stage_seconds[name]``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.stage_seconds[name] = (
                self.stage_seconds.get(name, 0.0) + elapsed)

    # --- derived -------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    @property
    def analyze_seconds(self) -> float:
        return self.stage_seconds.get("analyze", 0.0)

    @property
    def hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def binaries_per_second(self) -> float:
        if self.analyze_seconds <= 0.0:
            return 0.0
        return self.binaries_analyzed / self.analyze_seconds

    @property
    def failures_by_class(self) -> Dict[str, int]:
        """Quarantine census: ``error_class`` -> count."""
        census: Counter = Counter(
            record.error_class for record in self.failures)
        return dict(sorted(census.items()))

    @property
    def workers_used(self) -> int:
        return len(self.worker_tasks)

    @property
    def worker_utilization(self) -> float:
        """Evenness of the task spread: 1.0 = perfectly balanced."""
        if not self.worker_tasks or self.jobs <= 0:
            return 0.0
        busiest = max(self.worker_tasks.values())
        if busiest == 0:
            return 0.0
        total = sum(self.worker_tasks.values())
        return total / (busiest * self.jobs)

    # --- rendering -----------------------------------------------------

    def render(self) -> str:
        points = [
            ("backend", f"{self.backend} x{self.jobs}"),
        ]
        for name, seconds in self.stage_seconds.items():
            points.append((f"stage {name}", f"{seconds * 1000:.1f} ms"))
        points += [
            ("binaries submitted", self.binaries_total),
            ("binaries analyzed", self.binaries_analyzed),
            ("cache", f"{self.cache_hits} hits / "
                      f"{self.cache_misses} misses "
                      f"({format_percent(self.hit_rate)} hit rate)"),
            ("cache stores", self.cache_stores),
            ("throughput",
             f"{self.binaries_per_second:.1f} binaries/s"),
            ("quarantined",
             f"{self.binaries_failed} binaries"
             + (" (" + ", ".join(
                    f"{cls}: {count}" for cls, count
                    in self.failures_by_class.items()) + ")"
                if self.failures_by_class else "")
             + (f", {self.negative_cache_hits} skipped via "
                f"negative cache"
                if self.negative_cache_hits else "")),
            ("workers used", f"{self.workers_used} of {self.jobs} "
                             f"(utilization "
                             f"{format_percent(self.worker_utilization)})"),
        ]
        return render_key_points(points, title="engine run statistics")
