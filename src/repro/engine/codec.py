"""Stable, versioned JSON codec for engine artifacts.

The cache persists :class:`repro.engine.record.BinaryRecord` instances
to disk; study results export :class:`repro.analysis.footprint.Footprint`
values.  Both need a *stable* encoding — sets are emitted sorted, keys
are sorted, and every payload carries a version tag so a cache written
by an older (incompatible) analysis is never trusted.

``ANALYSIS_VERSION`` must be bumped whenever the per-binary analysis
semantics change (new footprint dimensions, different effect
extraction, ...): it is part of the cache address, so a bump silently
invalidates every previously cached record.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Union

from ..analysis.binary import RootEffects
from ..analysis.footprint import Footprint
from .errors import ERROR_CLASSES, AnalysisFault
from .record import BinaryRecord

#: Version of the per-binary analysis semantics (cache key component).
ANALYSIS_VERSION = "1"

#: Version of the JSON encoding itself.
CODEC_VERSION = "1"


class CodecError(ValueError):
    """Raised when a payload is malformed or version-incompatible."""


def _sorted(items) -> list:
    return sorted(items)


def _check_version(payload: Dict[str, Any], kind: str) -> None:
    if not isinstance(payload, dict):
        raise CodecError(f"{kind}: expected an object")
    version = payload.get("codec_version")
    if version != CODEC_VERSION:
        raise CodecError(
            f"{kind}: codec version {version!r} != {CODEC_VERSION!r}")


# --- Footprint ---------------------------------------------------------


def footprint_to_dict(footprint: Footprint) -> Dict[str, Any]:
    return {
        "codec_version": CODEC_VERSION,
        "syscalls": _sorted(footprint.syscalls),
        "ioctls": _sorted(footprint.ioctls),
        "fcntls": _sorted(footprint.fcntls),
        "prctls": _sorted(footprint.prctls),
        "pseudo_files": _sorted(footprint.pseudo_files),
        "libc_symbols": _sorted(footprint.libc_symbols),
        "unresolved_sites": footprint.unresolved_sites,
    }


def footprint_from_dict(payload: Dict[str, Any]) -> Footprint:
    _check_version(payload, "footprint")
    return Footprint.build(
        syscalls=payload.get("syscalls", ()),
        ioctls=payload.get("ioctls", ()),
        fcntls=payload.get("fcntls", ()),
        prctls=payload.get("prctls", ()),
        pseudo_files=payload.get("pseudo_files", ()),
        libc_symbols=payload.get("libc_symbols", ()),
        unresolved_sites=int(payload.get("unresolved_sites", 0)),
    )


def footprint_to_json(footprint: Footprint, indent: int = None) -> str:
    return json.dumps(footprint_to_dict(footprint), indent=indent,
                      sort_keys=True)


def footprint_from_json(text: str) -> Footprint:
    return footprint_from_dict(json.loads(text))


# --- RootEffects -------------------------------------------------------


def _effects_to_dict(effects: RootEffects) -> Dict[str, Any]:
    return {
        "syscalls": _sorted(effects.syscalls),
        "ioctls": _sorted(effects.ioctls),
        "fcntls": _sorted(effects.fcntls),
        "prctls": _sorted(effects.prctls),
        "called_imports": _sorted(effects.called_imports),
        "unresolved_sites": effects.unresolved_sites,
        "unknown_syscall_numbers": _sorted(
            effects.unknown_syscall_numbers),
    }


def _effects_from_dict(payload: Dict[str, Any]) -> RootEffects:
    return RootEffects(
        syscalls=frozenset(payload.get("syscalls", ())),
        ioctls=frozenset(payload.get("ioctls", ())),
        fcntls=frozenset(payload.get("fcntls", ())),
        prctls=frozenset(payload.get("prctls", ())),
        called_imports=frozenset(payload.get("called_imports", ())),
        unresolved_sites=int(payload.get("unresolved_sites", 0)),
        unknown_syscall_numbers=frozenset(
            int(n) for n in payload.get("unknown_syscall_numbers", ())),
    )


# --- BinaryRecord ------------------------------------------------------


def record_to_dict(record: BinaryRecord) -> Dict[str, Any]:
    return {
        "codec_version": CODEC_VERSION,
        "analysis_version": ANALYSIS_VERSION,
        "name": record.name,
        "sha256": record.sha256,
        "soname": record.soname,
        "needed": list(record.needed),
        "imported": _sorted(record.imported),
        "exported": _sorted(record.exported),
        "pseudo_files": _sorted(record.pseudo_files),
        "is_shared_library": record.is_shared_library,
        "interpreter": record.interpreter,
        "direct_syscalls": _sorted(record.direct_syscalls),
        "entry_effects": (_effects_to_dict(record.entry_effects)
                          if record.entry_effects is not None else None),
        "export_effects": {
            name: _effects_to_dict(effects)
            for name, effects in sorted(record.export_effects.items())
        },
    }


def record_from_dict(payload: Dict[str, Any]) -> BinaryRecord:
    _check_version(payload, "record")
    if payload.get("analysis_version") != ANALYSIS_VERSION:
        raise CodecError(
            f"record: analysis version "
            f"{payload.get('analysis_version')!r} != {ANALYSIS_VERSION!r}")
    entry = payload.get("entry_effects")
    return BinaryRecord(
        name=payload.get("name", ""),
        sha256=payload.get("sha256", ""),
        soname=payload.get("soname"),
        needed=tuple(payload.get("needed", ())),
        imported=frozenset(payload.get("imported", ())),
        exported=frozenset(payload.get("exported", ())),
        pseudo_files=frozenset(payload.get("pseudo_files", ())),
        is_shared_library=bool(payload.get("is_shared_library", False)),
        interpreter=payload.get("interpreter"),
        direct_syscalls=frozenset(payload.get("direct_syscalls", ())),
        entry_effects=(_effects_from_dict(entry)
                       if entry is not None else None),
        export_effects={
            name: _effects_from_dict(effects)
            for name, effects in payload.get(
                "export_effects", {}).items()
        },
    )


def record_to_json(record: BinaryRecord) -> str:
    return json.dumps(record_to_dict(record), sort_keys=True,
                      separators=(",", ":"))


def record_from_json(text: str) -> BinaryRecord:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CodecError(f"record: invalid JSON ({exc})") from None
    return record_from_dict(payload)


# --- AnalysisFault (negative cache entries) ----------------------------


def fault_to_dict(fault: AnalysisFault) -> Dict[str, Any]:
    return {
        "codec_version": CODEC_VERSION,
        "analysis_version": ANALYSIS_VERSION,
        "fault": {
            "error_class": fault.error_class,
            "exc_type": fault.exc_type,
            "message": fault.message,
            "stage": fault.stage,
        },
    }


def fault_from_dict(payload: Dict[str, Any]) -> AnalysisFault:
    _check_version(payload, "fault")
    if payload.get("analysis_version") != ANALYSIS_VERSION:
        raise CodecError(
            f"fault: analysis version "
            f"{payload.get('analysis_version')!r} != {ANALYSIS_VERSION!r}")
    body = payload.get("fault")
    if not isinstance(body, dict):
        raise CodecError("fault: missing fault body")
    error_class = body.get("error_class", "internal")
    if error_class not in ERROR_CLASSES:
        raise CodecError(f"fault: unknown error class {error_class!r}")
    return AnalysisFault(
        error_class=error_class,
        exc_type=str(body.get("exc_type", "")),
        message=str(body.get("message", "")),
        stage=str(body.get("stage", "analyze")),
    )


def fault_to_json(fault: AnalysisFault) -> str:
    return json.dumps(fault_to_dict(fault), sort_keys=True,
                      separators=(",", ":"))


# --- cache entries: record or negative (fault) entry -------------------


def entry_to_json(entry: Union[BinaryRecord, AnalysisFault]) -> str:
    """Encode one cache entry — a record or a quarantined fault."""
    if isinstance(entry, AnalysisFault):
        return fault_to_json(entry)
    return record_to_json(entry)


def entry_from_json(text: str) -> Union[BinaryRecord, AnalysisFault]:
    """Decode one cache entry; faults mark negative-cached bytes."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CodecError(f"entry: invalid JSON ({exc})") from None
    if isinstance(payload, dict) and "fault" in payload:
        return fault_from_dict(payload)
    return record_from_dict(payload)
