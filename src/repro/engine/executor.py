"""Pluggable task executor: serial, threaded, or multi-process.

All backends expose the same order-preserving ``map`` contract, so the
engine produces identical results regardless of backend or worker
count — parallelism changes wall time, never output.

Backend notes:

* ``serial`` — plain loop; the baseline and the default.
* ``thread`` — ``ThreadPoolExecutor``; bounded by the GIL for this
  pure-Python workload but useful where analysis waits on I/O.
* ``process`` — ``ProcessPoolExecutor`` with a ``fork`` context where
  available (``spawn`` otherwise); the function and items must be
  picklable.  Tasks are chunked to amortize IPC.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

BACKENDS = ("serial", "thread", "process")


def _process_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


class Executor:
    """Order-preserving map over a fixed worker pool."""

    def __init__(self, backend: str = "serial", jobs: int = 1) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {BACKENDS}")
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.backend = backend
        self.jobs = jobs

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item; results in input order."""
        items = list(items)
        if not items:
            return []
        if self.backend == "serial" or self.jobs == 1 and (
                self.backend == "thread"):
            return [fn(item) for item in items]
        if self.backend == "thread":
            with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                return list(pool.map(fn, items))
        # process backend
        chunksize = max(1, len(items) // (self.jobs * 4))
        with ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=_process_context()) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))
