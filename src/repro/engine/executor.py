"""Pluggable task executor: serial, threaded, or multi-process.

All backends expose the same order-preserving ``map`` contract, so the
engine produces identical results regardless of backend or worker
count — parallelism changes wall time, never output.

Backend notes:

* ``serial`` — plain loop; the baseline and the default.
* ``thread`` — ``ThreadPoolExecutor``; bounded by the GIL for this
  pure-Python workload but useful where analysis waits on I/O.
* ``process`` — ``ProcessPoolExecutor`` with a ``fork`` context where
  available (``spawn`` otherwise); the function and items must be
  picklable.  Tasks are chunked to amortize IPC.

A single-job map always runs serially: spinning up a pool to do the
work one item at a time only adds IPC and startup cost.

Fault policy
------------

Bulk analysis over uncurated inputs must not die on the first broken
item.  :meth:`Executor.map` therefore accepts an optional
:class:`FaultPolicy`; when given, every task runs under a guard that

* retries once on a transient :class:`OSError` (opt-out), then
* captures any exception as a classified
  :class:`repro.engine.errors.AnalysisFault` instead of propagating,

and the map returns :class:`TaskOutcome` values.  The guard runs
*inside* the worker, so capture behaves identically across the
serial, thread, and process backends.  With ``capture=False`` the
original exception propagates — that is strict, fail-fast mode.
"""

from __future__ import annotations

import functools
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, TypeVar

from .errors import AnalysisFault, classify_exception

T = TypeVar("T")
R = TypeVar("R")

BACKENDS = ("serial", "thread", "process")


def _process_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


@dataclass(frozen=True)
class FaultPolicy:
    """How per-task failures are handled during a map."""

    capture: bool = True           # False = strict: re-raise
    retry_transient: bool = True   # retry once on OSError

    @classmethod
    def strict(cls) -> "FaultPolicy":
        return cls(capture=False, retry_transient=False)


@dataclass(frozen=True)
class TaskOutcome:
    """Result of one guarded task: a value or a captured fault.

    ``seconds`` is the task's worker-side wall time (including a
    transient retry, if one happened) — the engine feeds it into the
    per-binary latency histograms and quarantine spans, so timing is
    measured identically on every backend.
    """

    value: Any = None
    fault: Optional[AnalysisFault] = None
    retried: bool = False
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.fault is None


def _call_guarded(fn: Callable[[T], R], policy: FaultPolicy,
                  item: T) -> TaskOutcome:
    """Run one task under the fault policy (worker-side, picklable)."""
    retried = False
    start = time.perf_counter()
    while True:
        try:
            value = fn(item)
            return TaskOutcome(value=value, retried=retried,
                               seconds=time.perf_counter() - start)
        except OSError as error:
            # Transient I/O trouble (EINTR, fd pressure, ...): one
            # deterministic retry before giving up on the task.
            if policy.retry_transient and not retried:
                retried = True
                continue
            if not policy.capture:
                raise
            return TaskOutcome(
                fault=classify_exception(error, retried=retried),
                retried=retried,
                seconds=time.perf_counter() - start)
        except Exception as error:
            if not policy.capture:
                raise
            return TaskOutcome(
                fault=classify_exception(error, retried=retried),
                retried=retried,
                seconds=time.perf_counter() - start)


class Executor:
    """Order-preserving map over a fixed worker pool."""

    def __init__(self, backend: str = "serial", jobs: int = 1) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {BACKENDS}")
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.backend = backend
        self.jobs = jobs

    def map(self, fn: Callable[[T], R], items: Sequence[T],
            policy: Optional[FaultPolicy] = None) -> List[R]:
        """Apply ``fn`` to every item; results in input order.

        With a :class:`FaultPolicy`, each element of the result is a
        :class:`TaskOutcome` instead of a bare return value.
        """
        if policy is not None:
            fn = functools.partial(_call_guarded, fn, policy)
        items = list(items)
        if not items:
            return []
        # Any single-job map runs serially, whatever the backend: a
        # one-worker pool computes the same thing with extra overhead.
        if self.backend == "serial" or self.jobs == 1:
            return [fn(item) for item in items]
        if self.backend == "thread":
            with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                return list(pool.map(fn, items))
        # process backend
        chunksize = max(1, len(items) // (self.jobs * 4))
        with ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=_process_context()) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))
