"""Incremental re-analysis across repository snapshots.

The §2.4 release-diff workflow analyzes a second ecosystem that is
mostly identical to the first; re-running continuously as support sets
evolve (Loupe-style) has the same shape.  This module diffs two
repositories by artifact *content hash* and drives the pipeline so
only the changed set is re-analyzed — unchanged artifacts are served
from the driver's cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from ..packages.repository import Repository
from .cache import MemoryCache
from .core import AnalysisEngine, EngineConfig, TaskKey
from .record import content_key
from .stats import EngineStats


def repository_manifest(repository: Repository,
                        ) -> Dict[TaskKey, str]:
    """(package, artifact) -> content hash for every ELF artifact."""
    manifest: Dict[TaskKey, str] = {}
    for package in repository:
        for artifact in package.artifacts:
            if artifact.is_elf:
                manifest[(package.name, artifact.name)] = (
                    content_key(artifact.data))
    return manifest


@dataclass(frozen=True)
class RepositoryDiff:
    """Artifact-level difference between two repository snapshots."""

    added: FrozenSet[TaskKey]
    removed: FrozenSet[TaskKey]
    changed: FrozenSet[TaskKey]
    unchanged: FrozenSet[TaskKey]

    @property
    def reanalysis_set(self) -> FrozenSet[TaskKey]:
        """Artifacts a warm engine must actually re-analyze."""
        return self.added | self.changed

    @property
    def reuse_fraction(self) -> float:
        total = (len(self.added) + len(self.changed)
                 + len(self.unchanged))
        return len(self.unchanged) / total if total else 0.0


def diff_repositories(old: Repository,
                      new: Repository) -> RepositoryDiff:
    """Diff two snapshots by per-artifact content hash."""
    return diff_manifests(repository_manifest(old),
                          repository_manifest(new))


def diff_manifests(old: Mapping[TaskKey, str],
                   new: Mapping[TaskKey, str]) -> RepositoryDiff:
    added = frozenset(key for key in new if key not in old)
    removed = frozenset(key for key in old if key not in new)
    shared = set(new) & set(old)
    changed = frozenset(key for key in shared
                        if new[key] != old[key])
    return RepositoryDiff(
        added=added, removed=removed, changed=changed,
        unchanged=frozenset(shared) - changed)


@dataclass
class IncrementalRun:
    """One driver invocation: result + what changed + how it ran."""

    result: object                    # repro.analysis.AnalysisResult
    diff: Optional[RepositoryDiff]    # None on the first run
    stats: EngineStats


class IncrementalDriver:
    """Re-analyzes repository snapshots, reusing unchanged artifacts.

    The driver keeps one engine (and its cache) alive across runs;
    content addressing does the rest — an artifact whose bytes did not
    change between snapshots is a cache hit regardless of package or
    file renames.
    """

    def __init__(self, config: Optional[EngineConfig] = None,
                 cache=None) -> None:
        self.engine = AnalysisEngine(config, cache=cache or
                                     MemoryCache())
        self._previous: Optional[Dict[TaskKey, str]] = None

    def run(self, repository: Repository,
            interpreters: Optional[Mapping[str, str]] = None,
            ) -> IncrementalRun:
        # Imported here: analysis.pipeline imports the engine package,
        # so a module-level import would be circular.
        from ..analysis.pipeline import AnalysisPipeline

        manifest = repository_manifest(repository)
        diff = (diff_manifests(self._previous, manifest)
                if self._previous is not None else None)
        pipeline = AnalysisPipeline(repository, interpreters,
                                    engine=self.engine)
        result = pipeline.run()
        self._previous = manifest
        return IncrementalRun(result=result, diff=diff,
                              stats=result.engine_stats)
