#!/usr/bin/env python3
"""Generate and exercise seccomp sandboxes from measured footprints (§6).

For a set of packages, compile each package's recovered system-call
footprint into a seccomp-BPF whitelist, then *execute* the filters in
the bundled BPF interpreter against a stream of synthetic syscall
events — demonstrating that an application compromise is confined to
the package's measured surface.

Run with::

    python examples/seccomp_sandbox.py [package ...]
"""

import sys

from repro import Study
from repro.security import SECCOMP_RET_ALLOW, generate_policy
from repro.syscalls.table import SYSCALLS, number_of


def main() -> None:
    study = Study.small()
    requested = sys.argv[1:] or ["coreutils", "qemu-user", "dash"]

    for package in requested:
        footprint = study.result.footprint_of(package)
        if footprint.is_empty:
            print(f"{package}: no ELF footprint (skipping)")
            continue
        policy = generate_policy(footprint)
        program_len = len(policy.program)
        print(f"\n=== {package} ===")
        print(f"whitelisted syscalls : "
              f"{len(policy.allowed_syscalls)}")
        print(f"BPF program length   : {program_len} instructions")

        # Simulate the kernel evaluating the filter for every defined
        # syscall: the allowed set must be exactly the footprint.
        allowed = 0
        killed = 0
        escapes = []
        for entry in SYSCALLS:
            verdict = policy.evaluate(entry.number)
            if verdict == SECCOMP_RET_ALLOW:
                allowed += 1
                if entry.name not in policy.allowed_syscalls:
                    escapes.append(entry.name)
            else:
                killed += 1
        print(f"kernel simulation    : {allowed} allowed, "
              f"{killed} killed, {len(escapes)} escapes")

        # A compromised process trying the classic post-exploit moves:
        for attack in ("execve", "ptrace", "init_module", "reboot"):
            number = number_of(attack)
            verdict = policy.evaluate(number)
            outcome = ("ALLOWED (in footprint)"
                       if verdict == SECCOMP_RET_ALLOW else "KILLED")
            print(f"  attacker calls {attack:12s} -> {outcome}")


if __name__ == "__main__":
    main()
