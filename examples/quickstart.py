#!/usr/bin/env python3
"""Quickstart: build the synthetic archive, analyze it, and reproduce
the paper's headline numbers.

Run with::

    python examples/quickstart.py
"""

from repro import Study
from repro.syscalls.table import ALL_NAMES


def main() -> None:
    # Study.small() synthesizes a reduced Ubuntu-like archive (real ELF
    # binaries!), disassembles every binary, and aggregates per-package
    # API footprints.  Everything downstream reads recovered data.
    study = Study.small()

    print(f"packages analyzed : {len(study.repository)}")
    print(f"binaries analyzed : {study.result.binaries_analyzed}")
    print()

    # Figure 2 — which system calls matter?
    importance = study.importance("syscall", universe=ALL_NAMES)
    indispensable = sum(1 for v in importance.values() if v >= 0.995)
    unused = sum(1 for v in importance.values() if v == 0.0)
    print(f"indispensable syscalls (importance ~100%): {indispensable}")
    print(f"never-used syscalls                      : {unused}")
    print()

    # Figure 3 — how far do the top-N syscalls take a new OS prototype?
    curve = study.curve()
    for target in (0.011, 0.50, 0.90):
        n = next((p.n_apis for p in curve if p.completeness >= target),
                 None)
        print(f"syscalls needed for {target:>5.1%} weighted "
              f"completeness: {n}")
    print()

    # What should an emulation layer implement next?  Ask for any
    # partially-complete system.
    print(study.tab6_linux_systems().rendered)
    print()

    # Single-API questions work too:
    for name in ("read", "access", "faccessat", "kexec_load"):
        print(f"API importance of {name:12s}: "
              f"{importance.get(name, 0.0):7.2%}")


if __name__ == "__main__":
    main()
