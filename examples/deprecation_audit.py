#!/usr/bin/env python3
"""Audit API deprecation and secure-variant adoption (§5 as a tool).

A kernel maintainer wants to retire an API, or a security team wants to
know how far the ecosystem has migrated to safer variants.  This
example answers both from measured footprints:

* which packages still use a candidate-for-removal syscall;
* adoption rates of secure vs. race-prone directory operations;
* deprecated APIs that would break real users if removed today.

Run with::

    python examples/deprecation_audit.py [syscall ...]
"""

import sys

from repro import Study
from repro.metrics import dependents_index
from repro.syscalls.table import ALL_NAMES


def main() -> None:
    study = Study.small()
    usage = study.usage("syscall", universe=ALL_NAMES)
    importance = study.importance("syscall", universe=ALL_NAMES)
    index = dependents_index(study.footprints, "syscall")

    candidates = sys.argv[1:] or ["nfsservctl", "uselib", "access",
                                  "wait4", "remap_file_pages"]
    print("Deprecation audit")
    print("=" * 64)
    for name in candidates:
        users = sorted(index.get(name, []))
        print(f"\n{name}:")
        print(f"  weighted importance : "
              f"{importance.get(name, 0.0):.2%}")
        print(f"  packages using it   : {len(users)} "
              f"({usage.get(name, 0.0):.2%} of archive)")
        if not users:
            print("  verdict             : safe to remove")
        elif importance.get(name, 0.0) < 0.10:
            heavy = sorted(
                users,
                key=lambda pkg: -study.popcon.install_probability(pkg))
            print(f"  verdict             : removable after porting "
                  f"{', '.join(heavy[:4])}")
        else:
            print("  verdict             : removal would break "
                  "widely-installed software")

    print("\nSecure-variant adoption (Table 8)")
    print("-" * 64)
    print(study.tab8_secure_variants().rendered)
    print()
    print(study.adoption().rendered)


if __name__ == "__main__":
    main()
