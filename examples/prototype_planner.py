#!/usr/bin/env python3
"""Plan a new Linux compatibility layer (§3.2 as a tool).

You are building an OS prototype and can afford to implement a limited
number of system calls.  This example walks the greedy implementation
path: at each milestone it reports which calls to add, the weighted
completeness reached, and which popular packages become runnable —
turning Figure 3 and Table 4 into an actionable roadmap.

Run with::

    python examples/prototype_planner.py [n_syscalls]
"""

import sys

from repro import Study
from repro.metrics import (
    missing_apis_report,
    supported_packages,
    weighted_completeness,
)


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    study = Study.small()
    ranking = study.syscall_ranking()
    curve = study.curve()

    print(f"Roadmap for a prototype with a budget of {budget} syscalls")
    print("=" * 64)

    milestones = [m for m in (40, 80, 125, 145, 202, 272)
                  if m <= budget] + [budget]
    previous = 0
    for milestone in sorted(set(milestones)):
        point = curve[milestone - 1]
        newly = ranking[previous:milestone]
        print(f"\n--- milestone: {milestone} syscalls "
              f"(weighted completeness {point.completeness:.2%}) ---")
        print(f"add next: {', '.join(newly[:10])}"
              + (" ..." if len(newly) > 10 else ""))
        previous = milestone

    supported_set = frozenset(ranking[:budget])
    runnable = supported_packages(
        supported_set, study.footprints, study.repository)
    by_weight = sorted(
        runnable,
        key=lambda pkg: -study.popcon.install_probability(pkg))
    completeness = weighted_completeness(
        supported_set, study.footprints, study.popcon,
        study.repository)

    print(f"\nAt {budget} syscalls the prototype runs "
          f"{len(runnable)} packages "
          f"({completeness:.2%} weighted completeness).")
    print("Most-installed packages that now work:")
    for package in by_weight[:10]:
        probability = study.popcon.install_probability(package)
        print(f"  {package:28s} installed on {probability:7.2%}")

    print("\nHighest-value syscalls still missing:")
    for api, weight in missing_apis_report(
            supported_set, study.footprints, study.popcon, limit=8):
        print(f"  {api:24s} unblocks weight {weight:.3f}")


if __name__ == "__main__":
    main()
