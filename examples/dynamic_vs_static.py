#!/usr/bin/env python3
"""Static analysis vs. dynamic tracing (§2.3 as a tool).

The paper chooses static binary analysis over strace because dynamic
traces are input-dependent and miss code paths — but spot-checks that
static results are a superset of strace output.  This example runs
that comparison over the synthetic archive:

1. "run" each binary under the bundled concrete interpreter and
   record the syscalls it actually issues (the strace equivalent);
2. compare against the statically recovered footprint;
3. report coverage: how much of the static footprint a single dynamic
   run observes, and verify the superset property holds everywhere.

Then it closes the loop with §6: the dynamic trace alone is often
enough to *identify* the program via the footprint-signature index.

Run with::

    python examples/dynamic_vs_static.py [package ...]
"""

import sys

from repro import Study
from repro.analysis import validate_over_approximation


def main() -> None:
    study = Study.small()
    requested = sys.argv[1:] or ["coreutils", "qemu-user", "systemd",
                                 "dash", "kexec-tools"]

    print("package                      static  dynamic  coverage  "
          "superset?")
    print("-" * 68)
    for package in requested:
        static = study.result.footprint_of(package).syscalls
        trace = study.trace_package(package)
        dynamic = trace.syscall_set()
        missing = validate_over_approximation(static, trace)
        coverage = len(dynamic) / len(static) if static else 0.0
        print(f"{package:28s} {len(static):6d}  {len(dynamic):7d}  "
              f"{coverage:7.1%}  "
              f"{'OK' if not missing else 'VIOLATED ' + str(missing)}")

    print("\nSample trace (coreutils, first 12 events):")
    trace = study.trace_package("coreutils")
    for event in trace.events[:12]:
        print(f"  {event}")
    print(f"  ... {len(trace.events)} events total, "
          f"{trace.instructions_executed} instructions interpreted")

    print("\nIdentifying programs from their dynamic traces (§6):")
    index = study.signature_index()
    for package in requested:
        trace = study.trace_package(package)
        result = index.identify(trace.syscall_set())
        if result.exact:
            verdict = f"identified exactly: {result.exact}"
        elif result.candidates:
            verdict = (f"top candidate: {result.candidates[0]} "
                       f"({len(result.candidates)} possible)")
        else:
            verdict = "no candidate"
        print(f"  {package:28s} -> {verdict}")


if __name__ == "__main__":
    main()
