#!/usr/bin/env python3
"""Pick evaluation workloads and assess API changes (§1/§6 as a tool).

Scenario one: you optimized a set of system calls in your kernel
prototype (say the event-loop path).  Which widely-installed
applications exercise them, and what is the smallest benchmark suite
covering every modified call?

Scenario two: you maintain the kernel and want to retire an API.  Who
breaks, how many installations are affected, and what is the verdict?

Plus: how robust are these answers to survey sampling noise
(bootstrap over the popularity-contest counts)?

Run with::

    python examples/research_advisor.py
"""

from repro import Study
from repro.compat import change_impact, coverage_plan, workload_suggestions
from repro.metrics import bootstrap_importance


def main() -> None:
    study = Study.small()

    modified = ["epoll_wait", "epoll_ctl", "accept4", "sendfile",
                "timerfd_create"]
    print(f"You optimized: {', '.join(modified)}")
    print("\nBest evaluation workloads (coverage, then popularity):")
    for suggestion in workload_suggestions(
            modified, study.footprints, study.popcon, limit=6):
        print(f"  {suggestion.package:26s} "
              f"installs={suggestion.install_probability:7.2%}  "
              f"exercises {suggestion.coverage}/{len(modified)}: "
              f"{', '.join(suggestion.apis_exercised)}")

    plan = coverage_plan(modified, study.footprints, study.popcon)
    print(f"\nMinimal suite covering all {len(modified)} calls "
          f"({len(plan)} workloads):")
    for suggestion in plan:
        print(f"  {suggestion.package:26s} -> "
              f"{', '.join(suggestion.apis_exercised)}")

    print("\nDeprecation assessments:")
    for api in ("nfsservctl", "kexec_load", "access", "read",
                "remap_file_pages"):
        impact = change_impact(api, study.footprints, study.popcon,
                               study.repository)
        print(f"  {api:18s} affected={impact.affected_installs:7.2%} "
              f"users={len(impact.direct_users):3d}  "
              f"-> {impact.verdict}")

    print("\nSurvey-noise check (bootstrap, 95% CI):")
    intervals = bootstrap_importance(
        study.footprints, study.popcon,
        apis=["kexec_load", "mbind", "nfsservctl"], n_boot=200)
    for api, ci in intervals.items():
        print(f"  {api:12s} importance {ci.point:7.3%} "
              f"[{ci.low:7.3%}, {ci.high:7.3%}]  "
              f"band {'stable' if ci.band_stable else 'UNSTABLE'}")


if __name__ == "__main__":
    main()
