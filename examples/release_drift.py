#!/usr/bin/env python3
"""Track API migration across releases (§2.4 / §6 as a tool).

The paper's snapshot cannot show adoption *trends*; its authors argue
the methodology should be re-run per release so kernel developers can
watch deprecated APIs drain and secure variants fill.  This example
does exactly that: it synthesizes two archive "releases" — the paper's
2015 snapshot and a future release where a third of legacy-API users
have migrated — measures both with the same pipeline, and diffs the
results.

Run with::

    python examples/release_drift.py [shift]
"""

import sys

from repro import Study
from repro.metrics import UsageDiff
from repro.syscalls.table import ALL_NAMES
from repro.synth import EcosystemConfig


def main() -> None:
    shift = float(sys.argv[1]) if len(sys.argv) > 1 else 0.35
    base = EcosystemConfig(n_filler_packages=120,
                           n_driver_packages=20,
                           n_script_packages=80)
    future = EcosystemConfig(n_filler_packages=120,
                             n_driver_packages=20,
                             n_script_packages=80,
                             adoption_shift=shift)

    print(f"Synthesizing the 2015 snapshot and a release with "
          f"{shift:.0%} migration...")
    before = Study.default(base).usage("syscall", universe=ALL_NAMES)
    after = Study.default(future).usage("syscall", universe=ALL_NAMES)
    diff = UsageDiff(before, after)

    print("\nAPIs gaining users:")
    for delta in diff.risers(8):
        print(f"  {delta.api:16s} {delta.before:7.2%} -> "
              f"{delta.after:7.2%}  ({delta.delta:+.2%})")

    print("\nAPIs losing users:")
    for delta in diff.fallers(8):
        print(f"  {delta.api:16s} {delta.before:7.2%} -> "
              f"{delta.after:7.2%}  ({delta.delta:+.2%})")

    print("\nRecommended migrations that actually progressed:")
    for verdict in diff.migrated_pairs():
        print(f"  {verdict.legacy:12s} -> {verdict.preferred:12s}  "
              f"(legacy {verdict.legacy_delta:+.2%}, preferred "
              f"{verdict.preferred_delta:+.2%})")


if __name__ == "__main__":
    main()
